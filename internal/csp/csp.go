// Package csp implements the paper's Theorem 12 (Appendix B.1): a Camelot
// algorithm that enumerates the variable assignments of a binary
// constraint system by the number of satisfied constraints, with proof
// size and time O*(σ^{(ω+ε)n/6}). The n variables are split into six
// blocks; for each evaluation point w0 the (6,2)-linear form over the
// matrices χ^{(s,t)}_{a_s,a_t}(w0) = w0^{f^{(s,t)}(a_s,a_t)} equals
// Σ_a w0^{#satisfied(a)}, and interpolation over w0 = 0..m recovers the
// full distribution.
package csp

import (
	"fmt"
	"math/big"
	"math/rand"

	"camelot/internal/cliques"
	"camelot/internal/core"
	"camelot/internal/crt"
	"camelot/internal/ff"
	"camelot/internal/interp"
	"camelot/internal/matrix"
	"camelot/internal/plan"
	"camelot/internal/tensor"
)

// Constraint is a binary constraint on variables U != V with a σ×σ
// satisfaction table: Allowed[a*σ+b] reports whether (x_U, x_V) = (a, b)
// satisfies it. Weight is the nonnegative integer weight of the paper's
// Remark after Theorem 12 (0 is normalized to 1, the unweighted case);
// the proof size scales with the total weight, exactly as the paper
// states.
type Constraint struct {
	U, V    int
	Weight  int
	Allowed []bool
}

// NormWeight returns the effective weight (zero-value structs count 1).
func (c Constraint) NormWeight() int {
	if c.Weight <= 0 {
		return 1
	}
	return c.Weight
}

// System is a 2-CSP over n variables (n divisible by 6) with alphabet
// size σ.
type System struct {
	N, Sigma    int
	Constraints []Constraint
}

// Validate checks shape invariants.
func (s *System) Validate() error {
	if s.N < 6 || s.N%6 != 0 {
		return fmt.Errorf("csp: n = %d must be a positive multiple of 6", s.N)
	}
	if s.Sigma < 2 {
		return fmt.Errorf("csp: alphabet size %d too small", s.Sigma)
	}
	for i, c := range s.Constraints {
		if c.U < 0 || c.U >= s.N || c.V < 0 || c.V >= s.N || c.U == c.V {
			return fmt.Errorf("csp: constraint %d has bad variables (%d, %d)", i, c.U, c.V)
		}
		if c.Weight < 0 {
			return fmt.Errorf("csp: constraint %d has negative weight %d", i, c.Weight)
		}
		if len(c.Allowed) != s.Sigma*s.Sigma {
			return fmt.Errorf("csp: constraint %d table has %d entries, want %d", i, len(c.Allowed), s.Sigma*s.Sigma)
		}
	}
	return nil
}

// TotalWeight returns Σ effective constraint weights W — the maximum
// achievable satisfied weight, which drives proof width and degree.
func (s *System) TotalWeight() int {
	w := 0
	for _, c := range s.Constraints {
		w += c.NormWeight()
	}
	return w
}

// Problem is the Camelot 2-CSP enumeration problem. Coordinate w0 of the
// width-(m+1) proof carries the (6,2)-form proof polynomial for the
// evaluation X(w0); all coordinates share the interpolated tensor
// coefficient matrices per point.
type Problem struct {
	sys *System
	// blockSize = n/6 variables per block; nAssign = σ^{n/6} assignments.
	blockSize, nAssign int
	// fType[pairIndex(s,t)] is the nAssign×nAssign matrix of satisfied
	// type-(s,t) constraint counts.
	fType       [15][]int
	dc          tensor.Decomposition
	padN        int
	totalWeight int
}

var (
	_ core.Problem         = (*Problem)(nil)
	_ core.CompiledProblem = (*Problem)(nil)
)

// pairIndex enumerates the 15 pairs (s, t), 0-based s < t < 6.
func pairIndex(s, t int) int {
	// Row-major upper triangle: offset(s) + (t - s - 1).
	off := [6]int{0, 5, 9, 12, 14, 15}
	return off[s] + t - s - 1
}

// NewProblem builds the Theorem 12 problem over the given base tensor
// decomposition.
func NewProblem(sys *System, base tensor.Decomposition) (*Problem, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	bs := sys.N / 6
	nAssign := 1
	for i := 0; i < bs; i++ {
		nAssign *= sys.Sigma
		if nAssign > 4096 {
			return nil, fmt.Errorf("csp: σ^{n/6} = %d too large", nAssign)
		}
	}
	p := &Problem{sys: sys, blockSize: bs, nAssign: nAssign, totalWeight: sys.TotalWeight()}
	for i := range p.fType {
		p.fType[i] = make([]int, nAssign*nAssign)
	}
	// Classify constraints into types and accumulate satisfaction counts.
	for _, c := range sys.Constraints {
		b1, b2 := c.U/bs, c.V/bs
		s, t := constraintType(b1, b2)
		idx := pairIndex(s, t)
		// Decode variable values from block-assignment indices: variable
		// v in block b has digit position v-b*bs (little-endian base σ).
		for as := 0; as < nAssign; as++ {
			for at := 0; at < nAssign; at++ {
				va := valueOf(p, c.U, b1, s, t, as, at)
				vb := valueOf(p, c.V, b2, s, t, as, at)
				if c.Allowed[va*sys.Sigma+vb] {
					p.fType[idx][as*nAssign+at] += c.NormWeight()
				}
			}
		}
	}
	dc, padN := base.ForSize(nAssign)
	p.dc = dc
	p.padN = padN
	return p, nil
}

// constraintType returns the lexicographically least 0-based pair (s, t)
// with both endpoint blocks contained in {s, t} (paper Appendix B.1).
func constraintType(b1, b2 int) (int, int) {
	if b1 > b2 {
		b1, b2 = b2, b1
	}
	if b1 == b2 {
		if b1 == 0 {
			return 0, 1
		}
		return 0, b1
	}
	return b1, b2
}

// valueOf extracts variable v's value given its block b and the
// assignments (as to block s, at to block t).
func valueOf(p *Problem, v, b, s, t, as, at int) int {
	assign := as
	if b == t {
		assign = at
	}
	digit := v - b*p.blockSize
	for i := 0; i < digit; i++ {
		assign /= p.sys.Sigma
	}
	return assign % p.sys.Sigma
}

// Name implements core.Problem.
func (p *Problem) Name() string {
	return fmt.Sprintf("2csp-enumerate(n=%d,σ=%d,m=%d)", p.sys.N, p.sys.Sigma, len(p.sys.Constraints))
}

// Width implements core.Problem: one coordinate per weight point
// w0 = 0..W (W = total constraint weight; W = m when unweighted).
func (p *Problem) Width() int { return p.totalWeight + 1 }

// Degree implements core.Problem.
func (p *Problem) Degree() int { return 3 * (p.dc.R() - 1) }

// MinModulus implements core.Problem.
func (p *Problem) MinModulus() uint64 {
	min := uint64(3*p.dc.R() + 1)
	if min < 1<<20 {
		min = 1 << 20
	}
	return min
}

// Bound returns σ^n·W^W, an upper bound on X(w0) over the grid
// w0 = 0..W.
func (p *Problem) Bound() *big.Int {
	w := p.totalWeight
	b := new(big.Int).Exp(big.NewInt(int64(p.sys.Sigma)), big.NewInt(int64(p.sys.N)), nil)
	if w > 0 {
		b.Mul(b, new(big.Int).Exp(big.NewInt(int64(w)), big.NewInt(int64(w)), nil))
	}
	return b
}

// NumPrimes implements core.Problem.
func (p *Problem) NumPrimes() int {
	bits := p.Bound().BitLen()
	per := new(big.Int).SetUint64(p.MinModulus()).BitLen() - 1
	if per < 1 {
		per = 1
	}
	np := (bits + per - 1) / per
	if np < 1 {
		np = 1
	}
	return np
}

// formsFor builds the m+1 forms over the field, one per w0. The
// compiled plan hoists this per-prime build out of the per-point path;
// Evaluate rebuilds it per call.
func (p *Problem) formsFor(f ff.Field) ([]*cliques.Form, error) {
	q := f.Q
	w := p.totalWeight
	fs := make([]*cliques.Form, w+1)
	for w0 := 0; w0 <= w; w0++ {
		// Powers of w0 up to the maximum satisfied weight W.
		pow := make([]uint64, w+1)
		pow[0] = 1 % q
		for i := 1; i <= w; i++ {
			pow[i] = f.Mul(pow[i-1], uint64(w0)%q)
		}
		mats := make([]*matrix.Matrix, 15)
		for idx := 0; idx < 15; idx++ {
			mm := matrix.New(f, p.padN, p.padN)
			for a := 0; a < p.nAssign; a++ {
				for b := 0; b < p.nAssign; b++ {
					mm.Set(a, b, pow[p.fType[idx][a*p.nAssign+b]])
				}
			}
			mats[idx] = mm
		}
		form, err := cliques.NewForm(f, p.padN, func(s, t int) *matrix.Matrix {
			return mats[pairIndex(s-1, t-1)]
		})
		if err != nil {
			return nil, err
		}
		fs[w0] = form
	}
	return fs, nil
}

// Evaluate implements core.Problem: the tensor coefficient matrices at
// x0 are computed once and combined through each w0's form.
func (p *Problem) Evaluate(q, x0 uint64) ([]uint64, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, err
	}
	fs, err := p.formsFor(f)
	if err != nil {
		return nil, err
	}
	alpha := p.dc.AlphaMatrixAtPoint(f, x0)
	beta := p.dc.BetaMatrixAtPoint(f, x0)
	gamma := p.dc.GammaMatrixAtPoint(f, x0)
	out := make([]uint64, len(fs))
	for w0, form := range fs {
		v, err := form.Combine(alpha, beta, gamma)
		if err != nil {
			return nil, err
		}
		out[w0] = v
	}
	return out, nil
}

// compiled is the 2-CSP Plan for one prime: the W+1 forms (each a set
// of 15 interpolated coefficient matrices) are built once at compile
// time; each block shares one tensor point-evaluator across its points,
// and Form.Combine allocates its intermediates per call, so one plan
// serves concurrent chunk tasks.
type compiled struct {
	p  *Problem
	f  ff.Field
	fs []*cliques.Form
}

// Compile implements plan.Compiler: the per-prime form build (W+1 sets
// of 15 padded σ^{n/6}-square matrices) that Evaluate pays per call
// compiles once, and the per-point Lagrange setup of the coefficient
// matrices amortizes across the block through a point evaluator. The
// evaluator produces the same matrices as Alpha/Beta/GammaMatrixAtPoint
// bit for bit, so compiled rows match Evaluate exactly.
func (p *Problem) Compile(f ff.Field) (plan.Plan, error) {
	fs, err := p.formsFor(f)
	if err != nil {
		return nil, err
	}
	return &compiled{p: p, f: f, fs: fs}, nil
}

// EvaluateBlock implements plan.Plan.
func (c *compiled) EvaluateBlock(xs []uint64) ([][]uint64, error) {
	pe := c.p.dc.NewPointEvaluator(c.f)
	out := make([][]uint64, len(xs))
	for xi, x0 := range xs {
		alpha, beta, gamma := pe.MatricesAt(x0)
		row := make([]uint64, len(c.fs))
		for w0, form := range c.fs {
			v, err := form.Combine(alpha, beta, gamma)
			if err != nil {
				return nil, err
			}
			row[w0] = v
		}
		out[xi] = row
	}
	return out, nil
}

// Distribution recovers N_k (the number of assignments satisfying
// exactly k constraints) for k = 0..m: X(w0) = Σ_{r=1..R} P_{w0}(r) per
// modulus, CRT, then integer interpolation over w0 = 0..m. (Padded
// χ cells are zero, so phantom assignments never contribute.)
func (p *Problem) Distribution(proof *core.Proof) ([]*big.Int, error) {
	m := p.totalWeight
	r := uint64(p.dc.R())
	xvals := make([]*big.Int, m+1)
	residues := make([]uint64, len(proof.Primes))
	for w0 := 0; w0 <= m; w0++ {
		for i, q := range proof.Primes {
			residues[i] = proof.SumRange(q, w0, 1, r+1)
		}
		v, err := crt.Reconstruct(residues, proof.Primes)
		if err != nil {
			return nil, fmt.Errorf("csp: w0=%d: %w", w0, err)
		}
		xvals[w0] = v
	}
	points := make([]int64, m+1)
	for i := range points {
		points[i] = int64(i)
	}
	coeffs, err := interp.LagrangeInt(points, xvals)
	if err != nil {
		return nil, fmt.Errorf("csp: %w", err)
	}
	// Coefficient of w^k is N_k (assignments of satisfied weight k).
	out := make([]*big.Int, m+1)
	for k := range out {
		if k < len(coeffs) {
			out[k] = coeffs[k]
		} else {
			out[k] = big.NewInt(0)
		}
	}
	return out, nil
}

// DistributionBrute enumerates all σ^n assignments — the ground truth.
// Index k of the result is the number of assignments with satisfied
// weight exactly k.
func DistributionBrute(sys *System) []*big.Int {
	m := sys.TotalWeight()
	out := make([]*big.Int, m+1)
	for k := range out {
		out[k] = big.NewInt(0)
	}
	assign := make([]int, sys.N)
	one := big.NewInt(1)
	var rec func(v int)
	rec = func(v int) {
		if v == sys.N {
			k := 0
			for _, c := range sys.Constraints {
				if c.Allowed[assign[c.U]*sys.Sigma+assign[c.V]] {
					k += c.NormWeight()
				}
			}
			out[k].Add(out[k], one)
			return
		}
		for a := 0; a < sys.Sigma; a++ {
			assign[v] = a
			rec(v + 1)
		}
	}
	rec(0)
	return out
}

// RandomSystem draws m random binary constraints with the given
// satisfaction density, for experiments.
func RandomSystem(n, sigma, m int, density float64, seed int64) *System {
	rng := newRng(seed)
	sys := &System{N: n, Sigma: sigma, Constraints: make([]Constraint, m)}
	for i := range sys.Constraints {
		u := rng.Intn(n)
		v := rng.Intn(n)
		for v == u {
			v = rng.Intn(n)
		}
		table := make([]bool, sigma*sigma)
		for j := range table {
			table[j] = rng.Float64() < density
		}
		sys.Constraints[i] = Constraint{U: u, V: v, Allowed: table}
	}
	return sys
}

// newRng isolates the math/rand dependency.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
