package csp

import (
	"reflect"
	"sync"
	"testing"

	"camelot/internal/core"
	"camelot/internal/ff"
	"camelot/internal/tensor"
)

// TestEvaluateBlockMatchesEvaluate: the compiled plan builds the W+1
// forms once per prime and shares one tensor point-evaluator per
// block; every residue of the width-(W+1) row must stay bit-identical
// to per-point Evaluate across seeds and primes. A shared plan is also
// driven from concurrent goroutines for the race detector.
func TestEvaluateBlockMatchesEvaluate(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		sys := RandomSystem(6, 2, 5, 0.5, seed)
		p, err := NewProblem(sys, tensor.Strassen())
		if err != nil {
			t.Fatal(err)
		}
		primes, err := core.ChoosePrimes(2, p.MinModulus(), int(seed))
		if err != nil {
			t.Fatal(err)
		}
		xs := []uint64{0, 1, 2, 7, 100, 54321, 1 << 19}
		for _, q := range primes {
			f, err := ff.New(q)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := p.Compile(f)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := pl.EvaluateBlock(xs)
			if err != nil {
				t.Fatal(err)
			}
			for i, x := range xs {
				want, err := p.Evaluate(q, x)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(rows[i], want) {
					t.Fatalf("q=%d x=%d: block %v != point %v", q, x, rows[i], want)
				}
			}
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					got, err := pl.EvaluateBlock(xs)
					if err != nil {
						t.Error(err)
						return
					}
					if !reflect.DeepEqual(got, rows) {
						t.Errorf("q=%d: concurrent block diverged", q)
					}
				}()
			}
			wg.Wait()
		}
	}
}
