package camelot_test

import (
	"context"
	"fmt"
	"log"

	"camelot"
)

// ExampleCountTriangles prepares, error-corrects, and verifies a
// triangle count over a 3-node community.
func ExampleCountTriangles() {
	g := camelot.CompleteGraph(6) // C(6,3) = 20 triangles
	count, report, err := camelot.CountTriangles(context.Background(), g,
		camelot.WithNodes(3), camelot.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("triangles:", count)
	fmt.Println("verified:", report.Verified)
	// Output:
	// triangles: 20
	// verified: true
}

// ExampleCountCliques survives a lying node: the adversary corrupts a
// whole node block, the decoders fix it and name the culprit.
func ExampleCountCliques() {
	g := camelot.CompleteGraph(8)
	count, report, err := camelot.CountCliques(context.Background(), g, 6,
		camelot.WithNodes(8),
		camelot.WithFaultTolerance(200), // covers one node's ~179 shares
		camelot.WithAdversary(camelot.LyingNodes(7, 3)),
		camelot.WithSeed(2),
		camelot.WithDecodingNodes(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("six-cliques:", count)
	fmt.Println("suspects:", report.SuspectNodes)
	// Output:
	// six-cliques: 28
	// suspects: [3]
}

// ExampleChromaticPolynomial recovers exact integer coefficients.
func ExampleChromaticPolynomial() {
	coeffs, _, err := camelot.ChromaticPolynomial(context.Background(), camelot.CycleGraph(4))
	if err != nil {
		log.Fatal(err)
	}
	// χ_{C4}(t) = t^4 - 4t^3 + 6t^2 - 3t
	fmt.Println(coeffs)
	// Output:
	// [0 -3 6 -4 1]
}

// ExampleCluster shows the session API: one long-lived cluster serving
// several counting problems as concurrent jobs.
func ExampleCluster() {
	cluster := camelot.NewCluster(camelot.WithNodes(2))
	defer cluster.Close()

	type submission struct {
		problem camelot.CountingProblem
		job     *camelot.Job
	}
	var subs []submission
	for _, n := range []int{5, 6, 7} {
		p, err := camelot.NewTriangleProblem(camelot.CompleteGraph(n))
		if err != nil {
			log.Fatal(err)
		}
		subs = append(subs, submission{problem: p, job: cluster.Submit(context.Background(), p, camelot.WithSeed(1))})
	}
	for i, s := range subs {
		proof, _, err := s.job.Wait(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		count, err := s.problem.Count(proof)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("K%d triangles: %v\n", i+5, count)
	}
	// Output:
	// K5 triangles: 10
	// K6 triangles: 20
	// K7 triangles: 35
}
