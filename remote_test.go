package camelot

// Facade-level tests for the multi-process deployment surface: the
// workload spec grammar and a coordinator + in-process worker-daemon
// run observed entirely through the public API (the OS-process variant
// lives in examples/multiproc and CI).

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestParseWorkloadGrammar pins the spec grammar: defaults, kinds,
// canonical instance bytes, and the rejection surface.
func TestParseWorkloadGrammar(t *testing.T) {
	for _, spec := range []string{
		"triangles", "triangles n=16 p=0.4 seed=3",
		"cliques n=7 k=6", "permanent n=6",
		"cnfsat vars=8 clauses=12 width=2", "hamilton n=7 p=0.6",
	} {
		w, err := ParseWorkload(spec)
		if err != nil {
			t.Errorf("ParseWorkload(%q): %v", spec, err)
			continue
		}
		if want := strings.Fields(spec)[0]; w.Kind != want {
			t.Errorf("ParseWorkload(%q): kind %q, want %q", spec, w.Kind, want)
		}
		if w.Problem == nil {
			t.Errorf("ParseWorkload(%q): nil problem", spec)
		}
	}
	w, err := ParseWorkload("  triangles   n=16  p=0.4 ")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(w.Instance); got != "n=16 p=0.4" {
		t.Errorf("instance not canonicalized: %q", got)
	}
	for _, bad := range []string{
		"", "warlocks n=3", "triangles n=three",
		"triangles n", "cnfsat vars=8 width=2.5",
	} {
		if _, err := ParseWorkload(bad); err == nil {
			t.Errorf("ParseWorkload(%q) accepted", bad)
		}
	}
}

// TestParseWorkloadDefaultsMatchExplicit pins that an omitted field and
// its documented default build the same problem — the property worker
// daemons rely on when a manifest spells fewer fields than the
// coordinator's parse saw.
func TestParseWorkloadDefaultsMatchExplicit(t *testing.T) {
	implicit, err := ParseWorkload("triangles")
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := ParseWorkload("triangles n=32 p=0.3 seed=1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pa, _, err := RunProblem(ctx, implicit.Problem, WithNodes(2), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	pb, _, err := RunProblem(ctx, explicit.Problem, WithNodes(2), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := pa.MarshalBinary()
	rb, _ := pb.MarshalBinary()
	if !bytes.Equal(ra, rb) {
		t.Error("default and explicit specs built different problems")
	}
}

// TestCoordinatorFacadeBitIdentity drives a remote run entirely through
// the public surface: NewCoordinator + AsTransport on the run side,
// ServeNode daemons on the worker side, proof bit-identical to the
// in-process default run.
func TestCoordinatorFacadeBitIdentity(t *testing.T) {
	const spec = "triangles n=12 p=0.5 seed=2"
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	w, err := ParseWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	busProof, _, err := RunProblem(ctx, w.Problem, WithNodes(3), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	busRaw, _ := busProof.MarshalBinary()

	co, err := NewCoordinator(3, CoordinatorConfig{
		Workload:   spec,
		ListenAddr: "127.0.0.1:0",
		Secret:     []byte("facade-secret"),
		MinWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	werrs := make([]error, 2)
	for i := range werrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			werrs[i] = ServeNode(ctx, NodeConfig{Join: co.Addr(), Secret: []byte("facade-secret")})
		}(i)
	}
	proof, rep, err := RunProblem(ctx, co.Workload().Problem,
		WithNodes(3), WithSeed(4), co.AsTransport())
	if err != nil {
		t.Fatalf("remote facade run: %v", err)
	}
	wg.Wait()
	for i, werr := range werrs {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	if !rep.Verified {
		t.Error("remote proof did not verify")
	}
	raw, _ := proof.MarshalBinary()
	if !bytes.Equal(raw, busRaw) {
		t.Error("remote facade proof differs from bus proof")
	}
	count, err := co.Workload().Problem.Count(proof)
	if err != nil {
		t.Fatalf("count recovery: %v", err)
	}
	busCount, _ := w.Problem.Count(busProof)
	if count.Cmp(busCount) != 0 {
		t.Errorf("remote count %v != bus count %v", count, busCount)
	}
}

// TestCoordinatorNodeMismatch pins the AsTransport guard: a run whose
// WithNodes disagrees with the coordinator's geometry fails with a
// naming error instead of shipping wrong ranges.
func TestCoordinatorNodeMismatch(t *testing.T) {
	co, err := NewCoordinator(3, CoordinatorConfig{Workload: "triangles n=8", ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, _, err = RunProblem(ctx, co.Workload().Problem, WithNodes(2), co.AsTransport())
	if err == nil || !strings.Contains(err.Error(), "coordinator built for 3 nodes") {
		t.Fatalf("mismatched run error = %v, want coordinator geometry complaint", err)
	}
}
