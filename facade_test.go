package camelot

import (
	"context"
	"math/big"
	"testing"

	"camelot/internal/core"
	"camelot/internal/tensor"
	"camelot/internal/triangles"
)

func TestGraphBuilders(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.N() != 5 || g.M() != 2 || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("graph builder broken")
	}
	mg := NewMultigraph(3)
	mg.AddEdge(0, 1)
	mg.AddEdge(0, 1)
	mg.AddEdge(2, 2)
	if mg.N() != 3 || mg.M() != 3 {
		t.Fatal("multigraph builder broken")
	}
	if rm := RandomMultigraph(4, 6, 1); rm.M() != 6 {
		t.Fatal("random multigraph broken")
	}
	if pg := PetersenGraph(); pg.N() != 10 || pg.M() != 15 {
		t.Fatal("petersen broken")
	}
	if cg := CycleGraph(7); cg.M() != 7 {
		t.Fatal("cycle broken")
	}
	if pc := PlantCliques(12, 0.1, 6, 1, 2); pc.N() != 12 {
		t.Fatal("plant cliques broken")
	}
}

func TestTensorOptionsChangeProofGeometry(t *testing.T) {
	g := CompleteGraph(8)
	ctx := context.Background()
	_, repS, err := CountCliques(ctx, g, 6, WithStrassenTensor(), WithDecodingNodes(1))
	if err != nil {
		t.Fatal(err)
	}
	_, repT, err := CountCliques(ctx, g, 6, WithTrivialTensor(2), WithDecodingNodes(1))
	if err != nil {
		t.Fatal(err)
	}
	// Strassen rank 7^3 = 343 < trivial 8^3 = 512: smaller proof.
	if repS.ProofSymbols >= repT.ProofSymbols {
		t.Fatalf("strassen proof %d not smaller than trivial %d", repS.ProofSymbols, repT.ProofSymbols)
	}
}

func TestCSPDistributionFacadeWeighted(t *testing.T) {
	all := []bool{true, true, true, false}
	sys := &CSPSystem{
		N: 6, Sigma: 2,
		Constraints: []CSPConstraint{
			{U: 0, V: 3, Weight: 2, Allowed: all},
			{U: 1, V: 4, Allowed: all},
		},
	}
	dist, rep, err := CSPDistribution(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("not verified")
	}
	// Total weight 3: distribution has 4 buckets summing to 2^6.
	if len(dist) != 4 {
		t.Fatalf("distribution has %d buckets, want 4", len(dist))
	}
	total := new(big.Int)
	for _, v := range dist {
		total.Add(total, v)
	}
	if total.Cmp(big.NewInt(64)) != 0 {
		t.Fatalf("sums to %v, want 64", total)
	}
}

func TestRunProblemDirect(t *testing.T) {
	g := RandomGraph(16, 0.3, 5)
	p, err := newFacadeTriangleProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	proof, rep, err := RunProblem(context.Background(), p, WithNodes(2), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if proof.Size() != rep.ProofSymbols {
		t.Fatal("proof size disagrees with report")
	}
	ok, err := VerifyProof(p, proof, 2, 7)
	if err != nil || !ok {
		t.Fatalf("verify: %v %v", ok, err)
	}
}

func TestTutteFacadeOnMultigraphWithLoops(t *testing.T) {
	mg := NewMultigraph(3)
	mg.AddEdge(0, 1)
	mg.AddEdge(1, 2)
	mg.AddEdge(2, 2) // loop contributes a y factor
	res, err := TuttePolynomial(context.Background(), mg, WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	// T = x^2·y (two bridges, one loop).
	if got := EvalTutte(res.T, 2, 3); got.Cmp(big.NewInt(12)) != 0 {
		t.Fatalf("T(2,3) = %v, want 12", got)
	}
}

func TestSilentNodesFacade(t *testing.T) {
	g := RandomGraph(18, 0.3, 9)
	_, rep, err := CountTriangles(context.Background(), g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Degree
	k := 4
	f := 0
	for {
		e := d + 1 + 2*f
		if f >= (e+k-1)/k {
			break
		}
		f++
	}
	count, rep, err := CountTriangles(context.Background(), g,
		WithNodes(k), WithFaultTolerance(f), WithAdversary(SilentNodes(1)), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified || count.Sign() < 0 {
		t.Fatal("silent-node run failed")
	}
}

// newFacadeTriangleProblem adapts the graph wrapper for RunProblem tests.
func newFacadeTriangleProblem(g *Graph) (Problem, error) {
	return triangles.NewProblem(g.g, tensor.Strassen())
}

func TestHamiltonianPathsFacade(t *testing.T) {
	count, _, err := CountHamiltonianPaths(context.Background(), CompleteGraph(4))
	if err != nil {
		t.Fatal(err)
	}
	if count.Cmp(big.NewInt(12)) != 0 { // 4!/2
		t.Fatalf("K4 hamiltonian paths = %v, want 12", count)
	}
	serial, err := prepareSerializedProofRoundTrip()
	if err != nil {
		t.Fatal(err)
	}
	if !serial {
		t.Fatal("serialized proof failed verification")
	}
}

// prepareSerializedProofRoundTrip exercises the proof wire format through
// the public types: prepare, marshal, unmarshal, verify.
func prepareSerializedProofRoundTrip() (bool, error) {
	g := RandomGraph(14, 0.3, 3)
	c := newConfig([]Option{WithSeed(4)})
	p, err := triangles.NewProblem(g.g, c.run.base)
	if err != nil {
		return false, err
	}
	proof, _, err := core.Run(context.Background(), p, c.coreOptions())
	if err != nil {
		return false, err
	}
	data, err := proof.MarshalBinary()
	if err != nil {
		return false, err
	}
	var back Proof
	if err := back.UnmarshalBinary(data); err != nil {
		return false, err
	}
	return VerifyProof(p, &back, 2, 11)
}
