package camelot

// The session layer: a Cluster is the long-lived form of the paper's
// community — K logical nodes standing by to prepare encoded proofs
// for a stream of inputs. It owns the resources the one-shot facade
// used to rebuild per call: the bounded worker pool every in-flight
// run shares fairly, the transport factory, and the warm per-prime
// geometry state (memoized fields and NTT plans are process-wide
// already; the cluster adds prime selections and Reed–Solomon codes
// keyed by geometry). Runs are submitted asynchronously and tracked as
// Jobs.

import (
	"context"
	"errors"
	"sync"

	"camelot/internal/core"
	"camelot/internal/plan"
)

// ErrClusterClosed is the failure state of jobs submitted to a closed
// cluster.
var ErrClusterClosed = errors.New("camelot: cluster closed")

// Cluster is a long-lived Camelot runtime. Construct with NewCluster,
// submit runs with Submit, and release it with Close. A Cluster is safe
// for concurrent use; any number of goroutines may submit jobs and
// in-flight jobs of any size share the pool fairly.
type Cluster struct {
	cfg   clusterConfig
	pool  *core.Pool
	geom  *core.GeometryCache
	plans *plan.Cache

	mu     sync.Mutex
	wg     sync.WaitGroup // in-flight jobs
	closed bool
}

// NewCluster creates a running cluster. Cluster-scoped options fix the
// logical node count K every run uses (default 1), the shared pool
// width (default GOMAXPROCS), and the transport factory.
func NewCluster(opts ...ClusterOption) *Cluster {
	var cc clusterConfig
	for _, o := range opts {
		o.applyCluster(&cc)
	}
	return &Cluster{
		cfg:   cc,
		pool:  core.NewPool(cc.maxParallelism),
		geom:  core.NewGeometryCache(),
		plans: plan.NewCache(),
	}
}

// Submit enqueues the full Camelot protocol for p as an asynchronous
// job and returns its handle immediately. The context governs the run
// itself: cancelling it aborts the job (Job.Wait then reports the
// cancellation). Submission never blocks on other jobs; the shared
// pool arbitrates execution. Submitting to a closed cluster yields a
// job already failed with ErrClusterClosed.
func (cl *Cluster) Submit(ctx context.Context, p Problem, opts ...RunOption) *Job {
	rs := defaultRunSettings()
	for _, o := range opts {
		o.applyRun(&rs)
	}
	c := config{cluster: cl.cfg, run: rs}
	return cl.submitCore(ctx, p, c.coreOptions())
}

// submitCore starts the job goroutine with fully merged core options.
// The facade path enters here with its own merged config, so one-shot
// calls and Submit run the exact same pipeline.
func (cl *Cluster) submitCore(ctx context.Context, p core.Problem, opts core.Options) *Job {
	j := newJob(p)
	// An explicitly narrowed per-call parallelism bound (one-shot
	// facade calls with WithMaxParallelism) keeps the legacy per-run
	// scheduler: the shared pool's width is fixed and must not
	// silently widen a caller's requested bound.
	if opts.MaxParallelism == 0 || opts.MaxParallelism == cl.pool.Width() {
		opts.Pool = cl.pool
		opts.MaxParallelism = 0
	}
	// Runs carrying a workload plan key share the cluster's compiled-
	// plan cache: the same canonical instance submitted twice (even by
	// different tenants, even under different fault knobs) compiles its
	// per-prime plans once. Keyless runs keep their plans private.
	if opts.PlanKey != "" {
		opts.Plans = cl.plans
	}
	opts.Geometry = cl.geom
	opts.Observer = (*jobObserver)(j)
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		j.finish(nil, nil, ErrClusterClosed)
		return j
	}
	cl.wg.Add(1)
	cl.mu.Unlock()
	go func() {
		defer cl.wg.Done()
		proof, rep, err := core.Run(ctx, p, opts)
		j.finish(proof, rep, err)
	}()
	return j
}

// PlanCacheStats reports how the cluster's shared compiled-plan cache
// has been used: hits count (workload, prime) lookups that found an
// existing compiled plan (or one mid-compile), misses count first
// compilations. Only runs submitted with a workload plan key (the serve
// layer's digest-keyed submissions) touch the shared cache.
func (cl *Cluster) PlanCacheStats() (hits, misses int64) {
	return cl.plans.Stats()
}

// Close drains the cluster: new submissions fail with ErrClusterClosed,
// jobs already in flight run to completion, then the shared pool shuts
// down. It blocks until the drain is done and is idempotent.
func (cl *Cluster) Close() {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return
	}
	cl.closed = true
	cl.mu.Unlock()
	cl.wg.Wait()
	cl.pool.Close()
}

// defaultCluster is the lazily initialized runtime behind the one-shot
// facade functions. It lives for the process (never closed) with
// default cluster configuration; per-call options override the run
// geometry per job.
var (
	defaultClusterOnce sync.Once
	defaultClusterInst *Cluster
)

// DefaultCluster returns the shared process-wide cluster the one-shot
// facade functions run on, creating it on first use. It is never
// closed; callers wanting lifecycle control create their own with
// NewCluster.
func DefaultCluster() *Cluster {
	defaultClusterOnce.Do(func() { defaultClusterInst = NewCluster() })
	return defaultClusterInst
}

// runOneShot executes a facade call on the default cluster and waits:
// the classic synchronous API expressed as submit + wait, sharing the
// default cluster's pool and warm geometry. Per-call cluster-scoped
// options (nodes, transport, an explicit parallelism bound) ride along
// in the merged core options, so results are bit-identical to the old
// per-call engine construction.
func runOneShot(ctx context.Context, p core.Problem, c config) (*core.Proof, *core.Report, error) {
	j := DefaultCluster().submitCore(ctx, p, c.coreOptions())
	return j.Wait(ctx)
}
