package camelot

// Multi-process deployment facade: a Coordinator that serves a run's
// point-range assignments to worker daemons over the control protocol,
// and ServeNode, the daemon loop a worker process runs. The coordinator
// is just a Transport with the remote-assignment capability — plug it
// into a cluster with AsTransport() and the engine ships manifests
// instead of evaluating locally, while decode, verify, erasure
// absorption, and repair rounds run unchanged. See ARCHITECTURE.md
// "Multi-process deployment".

import (
	"context"
	"fmt"
	"time"

	"camelot/internal/core"
	"camelot/internal/ctrl"
)

// CoordinatorConfig parameterizes NewCoordinator.
type CoordinatorConfig struct {
	// Workload is the spec line ("triangles n=24 p=0.3 seed=7") naming
	// what the cluster computes; required. It is parsed locally for the
	// run's geometry and shipped verbatim to workers, so both sides
	// construct the same problem (see ParseWorkload).
	Workload string
	// ListenAddr is the TCP address workers join (default ":0" —
	// ephemeral; read it back with Addr).
	ListenAddr string
	// Secret enables per-frame HMAC authentication when non-empty; it
	// must match every worker's. Empty runs unauthenticated (loopback
	// development mode).
	Secret []byte
	// MinWorkers is how many joined workers the initial round waits for
	// (default 1); JoinTimeout bounds that wait (default 30s).
	MinWorkers  int
	JoinTimeout time.Duration
}

// Coordinator owns one multi-process run: a bound listener admitting
// worker daemons, the parsed workload, and the transport seam the
// engine drives. Create it, hand AsTransport() to the cluster options,
// submit Workload().Problem, and the run executes on whatever workers
// join. The engine closes the coordinator when the run ends (workers
// are told Done and exit cleanly); Close is the idempotent manual
// teardown for runs that never start.
type Coordinator struct {
	co *ctrl.Coordinator
	w  *Workload
}

// NewCoordinator parses the workload and binds the worker listener for
// a run of nodes logical nodes. The listener is live — and Addr final —
// before this returns, so callers can print the join address ahead of
// starting the run.
func NewCoordinator(nodes int, cfg CoordinatorConfig) (*Coordinator, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("camelot: coordinator needs at least 1 node, got %d", nodes)
	}
	w, err := ParseWorkload(cfg.Workload)
	if err != nil {
		return nil, fmt.Errorf("camelot: workload spec: %w", err)
	}
	co, err := ctrl.NewCoordinator(nodes, ctrl.Config{
		ListenAddr:  cfg.ListenAddr,
		Secret:      cfg.Secret,
		Kind:        w.Kind,
		Instance:    w.Instance,
		MinWorkers:  cfg.MinWorkers,
		JoinTimeout: cfg.JoinTimeout,
	})
	if err != nil {
		return nil, fmt.Errorf("camelot: %w", err)
	}
	return &Coordinator{co: co, w: w}, nil
}

// Addr is the bound listener address — what worker processes pass to
// `camelot node -join`.
func (c *Coordinator) Addr() string { return c.co.Addr() }

// Workload is the parsed spec; submit Workload().Problem to the run.
func (c *Coordinator) Workload() *Workload { return c.w }

// Close tears the coordinator down (idempotent). Runs the engine
// finished are already closed; this is for error paths.
func (c *Coordinator) Close() { c.co.Close() }

// AsTransport adapts the coordinator to the cluster's transport seam.
// The returned option must be paired with WithNodes of the same count
// the coordinator was built for — assignments are ranges of that
// geometry — and a mismatch fails the run with a naming error rather
// than shipping wrong ranges.
func (c *Coordinator) AsTransport() ClusterOption {
	return WithTransport(func(k int) Transport {
		if k != c.co.K() {
			return core.FailedTransport(fmt.Errorf(
				"camelot: coordinator built for %d nodes but run configured %d (pair AsTransport with WithNodes(%d))",
				c.co.K(), k, c.co.K()))
		}
		return c.co
	})
}

// NodeConfig parameterizes ServeNode.
type NodeConfig struct {
	// Join is the coordinator's address (required).
	Join string
	// Secret must match the coordinator's; empty joins an
	// unauthenticated cluster.
	Secret []byte
	// Name is a display name sent in the hello (defaults to the local
	// address).
	Name string
	// FailOwner > 0 injects a deterministic crash when a round-0
	// assignment names that logical node — the churn knob behind
	// `camelot node -fail-owner`, used by tests and the multiproc
	// example to exercise repair rounds.
	FailOwner int
}

// ServeNode runs the worker daemon until the coordinator says the run
// is done (returns nil), the context ends, or the coordinator refuses
// the join. Connection drops are retried with backoff; a reconnecting
// worker resumes its slot and replays undelivered assignments.
func ServeNode(ctx context.Context, cfg NodeConfig) error {
	return ctrl.RunWorker(ctx, ctrl.WorkerConfig{
		Join:      cfg.Join,
		Secret:    cfg.Secret,
		Name:      cfg.Name,
		FailOwner: cfg.FailOwner,
	})
}
