package camelot

// Job is the async handle Cluster.Submit returns: a future for the
// run's (proof, report, error) triple plus an inspectable live status —
// which protocol stage the run is in, how much of the evaluation grid
// is done, how many suspect nodes the decoders have identified so far.
// Status is fed by the engine's Observer callbacks, so polling it costs
// a few atomic loads and never perturbs the run.

import (
	"context"
	"sync/atomic"

	"camelot/internal/core"
)

// Stage identifies a protocol stage in a job's status.
type Stage = core.Stage

// Re-exported stage values for status inspection.
const (
	StageQueued  = core.StageQueued
	StagePrepare = core.StagePrepare
	StageDecode  = core.StageDecode
	StageVerify  = core.StageVerify
	StageDone    = core.StageDone
)

// JobState is the lifecycle state of a submitted job.
type JobState int32

const (
	// JobRunning means the job has been accepted and not yet finished.
	JobRunning JobState = iota
	// JobSucceeded means the run completed and its proof verified.
	JobSucceeded
	// JobFailed means the run returned an error (including verification
	// failure and cancellation).
	JobFailed
)

// String returns the state name.
func (s JobState) String() string {
	switch s {
	case JobRunning:
		return "running"
	case JobSucceeded:
		return "succeeded"
	case JobFailed:
		return "failed"
	}
	return "unknown"
}

// JobStatus is a point-in-time snapshot of a job.
type JobStatus struct {
	// Problem is the submitted problem's name.
	Problem string
	// State is the lifecycle state.
	State JobState
	// Stage is the protocol stage the run is in (StageQueued before the
	// engine starts, StageDone after it finishes either way).
	Stage Stage
	// PointsDone / PointsTotal track the prepare stage's evaluation
	// grid in (point, prime) units. PointsTotal is 0 until the engine
	// has resolved the run geometry.
	PointsDone, PointsTotal int
	// Suspects is the live size of the union of suspect node sets
	// across the decoders that have finished so far.
	Suspects int
	// DeliveryFaults is the number of nodes whose share broadcasts
	// never arrived — transport losses decoded as erasures, reported
	// distinctly from the content-fault Suspects. 0 until the prepare
	// stage's gather resolves.
	DeliveryFaults int
	// RepairRounds is the number of self-healing gather rounds started
	// so far (0 when repair never triggered).
	RepairRounds int
	// Err is the terminal error for failed jobs, nil otherwise.
	Err error
}

// Job is an in-flight (or finished) Camelot run. Its methods are safe
// for concurrent use.
type Job struct {
	problem core.Problem
	done    chan struct{}

	stage          atomic.Int32
	pointsDone     atomic.Int64
	pointsTotal    atomic.Int64
	suspects       atomic.Int32
	deliveryFaults atomic.Int32
	repairRounds   atomic.Int32

	// Terminal results; written once by finish before done is closed,
	// read only after done (or under the done-channel happens-before).
	proof  *Proof
	report *Report
	err    error
}

func newJob(p core.Problem) *Job {
	j := &Job{problem: p, done: make(chan struct{})}
	j.stage.Store(int32(StageQueued))
	return j
}

// finish publishes the terminal state. Called exactly once.
func (j *Job) finish(proof *Proof, report *Report, err error) {
	j.proof = proof
	j.report = report
	j.err = err
	j.stage.Store(int32(StageDone))
	close(j.done)
}

// Done returns a channel closed when the job reaches a terminal state —
// the select-friendly form of Wait.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx is done, whichever comes
// first, and returns the job's results. A ctx expiry here abandons the
// wait only — the job keeps running under its submission context; Wait
// again to re-attach. Like core.Run, a decoded proof may accompany a
// verification error.
func (j *Job) Wait(ctx context.Context) (*Proof, *Report, error) {
	select {
	case <-j.done:
		return j.proof, j.report, j.err
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
}

// Err returns the terminal error for finished jobs and nil while the
// job is running (check Done first to distinguish "running" from
// "succeeded").
func (j *Job) Err() error {
	select {
	case <-j.done:
		return j.err
	default:
		return nil
	}
}

// Status returns a point-in-time snapshot of the job's progress.
func (j *Job) Status() JobStatus {
	st := JobStatus{
		Problem:        j.problem.Name(),
		State:          JobRunning,
		Stage:          Stage(j.stage.Load()),
		PointsDone:     int(j.pointsDone.Load()),
		PointsTotal:    int(j.pointsTotal.Load()),
		Suspects:       int(j.suspects.Load()),
		DeliveryFaults: int(j.deliveryFaults.Load()),
		RepairRounds:   int(j.repairRounds.Load()),
	}
	select {
	case <-j.done:
		st.Err = j.err
		if j.err != nil {
			st.State = JobFailed
		} else {
			st.State = JobSucceeded
		}
	default:
	}
	return st
}

// jobObserver adapts a Job to the engine's Observer interface without
// exporting the callbacks on Job itself.
type jobObserver Job

var _ core.Observer = (*jobObserver)(nil)

func (o *jobObserver) Geometry(points, nodes int) {
	(*Job)(o).pointsTotal.Store(int64(points))
}

func (o *jobObserver) StageStart(s Stage) {
	(*Job)(o).stage.Store(int32(s))
}

func (o *jobObserver) PointsDone(delta int) {
	(*Job)(o).pointsDone.Add(int64(delta))
}

func (o *jobObserver) SuspectsFound(count int) {
	j := (*Job)(o)
	// Monotone max: decoders finish out of order.
	for {
		cur := j.suspects.Load()
		if int32(count) <= cur || j.suspects.CompareAndSwap(cur, int32(count)) {
			return
		}
	}
}

func (o *jobObserver) DeliveryFaults(count int) {
	(*Job)(o).deliveryFaults.Store(int32(count))
}

func (o *jobObserver) RepairRound(round int, reassigned []int) {
	// Rounds ascend, one caller at a time; a plain store suffices.
	(*Job)(o).repairRounds.Store(int32(round))
}
