package main

// The jobs subcommand: run a manifest of problems through one long-lived
// cluster — the service pattern the session API exists for. Each
// manifest line names a counting workload; all lines are submitted as
// concurrent jobs, progress is polled while they run, and a throughput
// summary closes the report.
//
//	camelot jobs -manifest workload.txt -nodes 4
//
// Manifest format: one job per line, `kind key=value ...`; blank lines
// and #-comments are ignored.
//
//	triangles n=32 p=0.3 seed=7
//	cliques   n=8 k=6 p=0.7 seed=1
//	permanent n=10 seed=2
//	cnfsat    vars=12 clauses=20 width=3 seed=3
//	hamilton  n=9 p=0.5 seed=4

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"camelot"
)

// manifestJob is one parsed manifest line.
type manifestJob struct {
	line    int
	kind    string
	digest  func(faults int) string // the proof-cache key of this line
	problem camelot.CountingProblem
}

// parseManifest reads the job list. Each non-comment line is a
// workload spec in the facade's shared grammar (camelot.ParseWorkload)
// — the same one-line encoding the coordinate subcommand and the
// control protocol's Assign manifests use.
func parseManifest(path string) ([]manifestJob, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var jobs []manifestJob
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		w, err := camelot.ParseWorkload(line)
		if err != nil {
			return nil, fmt.Errorf("manifest line %d: %w", lineNo, err)
		}
		jobs = append(jobs, manifestJob{line: lineNo, kind: w.Kind, digest: w.Digest, problem: w.Problem})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("manifest %s holds no jobs", path)
	}
	return jobs, nil
}

// runJobs is the jobs subcommand body.
func runJobs(rest []string) error {
	fs := flag.NewFlagSet("jobs", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	manifest := fs.String("manifest", "", "path to the job manifest (required)")
	poll := fs.Duration("poll", 200*time.Millisecond, "progress polling interval (0 disables progress output)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *manifest == "" {
		return fmt.Errorf("jobs: -manifest is required")
	}
	specs, err := parseManifest(*manifest)
	if err != nil {
		return err
	}
	runOpts, clusterOpts, err := cf.splitOptions()
	if err != nil {
		return err
	}

	ctx := context.Background()
	cluster := camelot.NewCluster(clusterOpts...)
	defer cluster.Close()

	start := time.Now()
	jobs := make([]*camelot.Job, len(specs))
	for i, spec := range specs {
		jobs[i] = cluster.Submit(ctx, spec.problem, runOpts...)
	}
	fmt.Printf("submitted %d jobs to one cluster (K=%d)\n", len(jobs), cf.nodes)

	if *poll > 0 {
		pollProgress(jobs, *poll)
	}

	var firstFailure error
	for i, job := range jobs {
		proof, rep, err := job.Wait(ctx)
		if err != nil {
			fmt.Printf("  [%2d] %-30s FAILED: %v\n", i, specs[i].kind, err)
			if firstFailure == nil {
				firstFailure = fmt.Errorf("job %d (%s): %w", i, specs[i].kind, err)
			}
			continue
		}
		count, err := specs[i].problem.Count(proof)
		if err != nil {
			fmt.Printf("  [%2d] %-30s RECOVERY FAILED: %v\n", i, specs[i].kind, err)
			if firstFailure == nil {
				firstFailure = fmt.Errorf("job %d (%s): recovering count: %w", i, specs[i].kind, err)
			}
			continue
		}
		// The digest is the same content-address `camelot serve` caches
		// under, so a manifest run's proofs are findable in a service.
		fmt.Printf("  [%2d] %-30s count=%v  (%d proof symbols, suspects %v, digest %s)\n",
			i, rep.Problem, count, rep.ProofSymbols, rep.SuspectNodes, specs[i].digest(cf.faults)[:12])
	}
	elapsed := time.Since(start)
	fmt.Printf("%d jobs in %v — %.2f jobs/sec\n",
		len(jobs), elapsed.Round(time.Millisecond), float64(len(jobs))/elapsed.Seconds())
	return firstFailure
}

// pollProgress prints a one-line status sweep until every job is done.
func pollProgress(jobs []*camelot.Job, interval time.Duration) {
	for {
		running := 0
		var points, total int
		for _, j := range jobs {
			st := j.Status()
			if st.State == camelot.JobRunning {
				running++
			}
			points += st.PointsDone
			total += st.PointsTotal
		}
		if running == 0 {
			return
		}
		fmt.Printf("  ... %d/%d jobs running, %d/%d evaluation units done\n",
			running, len(jobs), points, total)
		time.Sleep(interval)
	}
}
