package main

// The jobs subcommand: run a manifest of problems through one long-lived
// cluster — the service pattern the session API exists for. Each
// manifest line names a counting workload; all lines are submitted as
// concurrent jobs, progress is polled while they run, and a throughput
// summary closes the report.
//
//	camelot jobs -manifest workload.txt -nodes 4
//
// Manifest format: one job per line, `kind key=value ...`; blank lines
// and #-comments are ignored.
//
//	triangles n=32 p=0.3 seed=7
//	cliques   n=8 k=6 p=0.7 seed=1
//	permanent n=10 seed=2
//	cnfsat    vars=12 clauses=20 width=3 seed=3
//	hamilton  n=9 p=0.5 seed=4

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"camelot"
)

// manifestJob is one parsed manifest line.
type manifestJob struct {
	line    int
	kind    string
	problem camelot.CountingProblem
}

// jobSpec holds a manifest line's key=value pairs with typed access.
type jobSpec struct {
	line   int
	kind   string
	fields map[string]string
}

func (s *jobSpec) errf(format string, args ...any) error {
	return fmt.Errorf("manifest line %d (%s): %s", s.line, s.kind, fmt.Sprintf(format, args...))
}

func (s *jobSpec) intField(key string, def int) (int, error) {
	v, ok := s.fields[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, s.errf("bad %s=%q", key, v)
	}
	return n, nil
}

func (s *jobSpec) floatField(key string, def float64) (float64, error) {
	v, ok := s.fields[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, s.errf("bad %s=%q", key, v)
	}
	return f, nil
}

// parseManifest reads the job list.
func parseManifest(path string) ([]manifestJob, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var jobs []manifestJob
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		spec := &jobSpec{line: lineNo, kind: parts[0], fields: make(map[string]string)}
		for _, kv := range parts[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, spec.errf("field %q is not key=value", kv)
			}
			spec.fields[k] = v
		}
		p, err := buildManifestProblem(spec)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, manifestJob{line: lineNo, kind: spec.kind, problem: p})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("manifest %s holds no jobs", path)
	}
	return jobs, nil
}

// buildManifestProblem constructs the counting problem a spec names.
func buildManifestProblem(s *jobSpec) (camelot.CountingProblem, error) {
	seed, err := s.intField("seed", 1)
	if err != nil {
		return nil, err
	}
	switch s.kind {
	case "triangles":
		n, err1 := s.intField("n", 32)
		p, err2 := s.floatField("p", 0.3)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return camelot.NewTriangleProblem(camelot.RandomGraph(n, p, int64(seed)))
	case "cliques":
		n, err1 := s.intField("n", 8)
		k, err2 := s.intField("k", 6)
		p, err3 := s.floatField("p", 0.7)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		return camelot.NewCliqueProblem(camelot.RandomGraph(n, p, int64(seed)), k)
	case "permanent":
		n, err := s.intField("n", 10)
		if err != nil {
			return nil, err
		}
		return camelot.NewPermanentProblem(randomMatrix(n, int64(seed)))
	case "cnfsat":
		vars, err1 := s.intField("vars", 12)
		clauses, err2 := s.intField("clauses", 20)
		width, err3 := s.intField("width", 3)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		return camelot.NewCNFProblem(randomCNF(vars, clauses, width, int64(seed)))
	case "hamilton":
		n, err1 := s.intField("n", 9)
		p, err2 := s.floatField("p", 0.5)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return camelot.NewHamiltonianCycleProblem(camelot.RandomGraph(n, p, int64(seed)))
	default:
		return nil, s.errf("unknown job kind (want triangles|cliques|permanent|cnfsat|hamilton)")
	}
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runJobs is the jobs subcommand body.
func runJobs(rest []string) error {
	fs := flag.NewFlagSet("jobs", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	manifest := fs.String("manifest", "", "path to the job manifest (required)")
	poll := fs.Duration("poll", 200*time.Millisecond, "progress polling interval (0 disables progress output)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *manifest == "" {
		return fmt.Errorf("jobs: -manifest is required")
	}
	specs, err := parseManifest(*manifest)
	if err != nil {
		return err
	}
	runOpts, clusterOpts, err := cf.splitOptions()
	if err != nil {
		return err
	}

	ctx := context.Background()
	cluster := camelot.NewCluster(clusterOpts...)
	defer cluster.Close()

	start := time.Now()
	jobs := make([]*camelot.Job, len(specs))
	for i, spec := range specs {
		jobs[i] = cluster.Submit(ctx, spec.problem, runOpts...)
	}
	fmt.Printf("submitted %d jobs to one cluster (K=%d)\n", len(jobs), cf.nodes)

	if *poll > 0 {
		pollProgress(jobs, *poll)
	}

	var firstFailure error
	for i, job := range jobs {
		proof, rep, err := job.Wait(ctx)
		if err != nil {
			fmt.Printf("  [%2d] %-30s FAILED: %v\n", i, specs[i].kind, err)
			if firstFailure == nil {
				firstFailure = fmt.Errorf("job %d (%s): %w", i, specs[i].kind, err)
			}
			continue
		}
		count, err := specs[i].problem.Count(proof)
		if err != nil {
			fmt.Printf("  [%2d] %-30s RECOVERY FAILED: %v\n", i, specs[i].kind, err)
			if firstFailure == nil {
				firstFailure = fmt.Errorf("job %d (%s): recovering count: %w", i, specs[i].kind, err)
			}
			continue
		}
		fmt.Printf("  [%2d] %-30s count=%v  (%d proof symbols, suspects %v)\n",
			i, rep.Problem, count, rep.ProofSymbols, rep.SuspectNodes)
	}
	elapsed := time.Since(start)
	fmt.Printf("%d jobs in %v — %.2f jobs/sec\n",
		len(jobs), elapsed.Round(time.Millisecond), float64(len(jobs))/elapsed.Seconds())
	return firstFailure
}

// pollProgress prints a one-line status sweep until every job is done.
func pollProgress(jobs []*camelot.Job, interval time.Duration) {
	for {
		running := 0
		var points, total int
		for _, j := range jobs {
			st := j.Status()
			if st.State == camelot.JobRunning {
				running++
			}
			points += st.PointsDone
			total += st.PointsTotal
		}
		if running == 0 {
			return
		}
		fmt.Printf("  ... %d/%d jobs running, %d/%d evaluation units done\n",
			running, len(jobs), points, total)
		time.Sleep(interval)
	}
}
