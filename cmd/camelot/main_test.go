package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSubcommands(t *testing.T) {
	cases := map[string][]string{
		"triangles":  {"triangles", "-n", "20", "-p", "0.3", "-nodes", "2", "-trials", "1"},
		"cliques":    {"cliques", "-n", "7", "-k", "6", "-p", "0.8", "-nodes", "2"},
		"chromatic":  {"chromatic", "-n", "7", "-p", "0.4", "-nodes", "2"},
		"tutte":      {"tutte", "-n", "5", "-edges", "6"},
		"cnfsat":     {"cnfsat", "-vars", "8", "-clauses", "10"},
		"permanent":  {"permanent", "-n", "6"},
		"hamilton":   {"hamilton", "-n", "7", "-p", "0.6"},
		"setcover":   {"setcover", "-n", "8", "-sets", "10", "-t", "3"},
		"ov":         {"ov", "-n", "32", "-t", "8"},
		"conv3sum":   {"conv3sum", "-n", "16", "-bits", "6"},
		"csp":        {"csp", "-n", "6", "-sigma", "2", "-m", "4"},
		"with-liar":  {"triangles", "-n", "16", "-p", "0.3", "-nodes", "4", "-faults", "40", "-lie", "1"},
		"with-crash": {"triangles", "-n", "16", "-p", "0.3", "-nodes", "4", "-faults", "40", "-silence", "2"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatalf("run(%v): %v", args, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"no args":        nil,
		"unknown":        {"frobnicate"},
		"bad lie list":   {"triangles", "-lie", "x,y"},
		"bad clique k":   {"cliques", "-k", "5"},
		"beyond radius":  {"triangles", "-n", "16", "-p", "0.3", "-nodes", "2", "-faults", "0", "-lie", "0"},
		"all byzantine":  {"triangles", "-n", "12", "-nodes", "1", "-lie", "0"},
		"oversized csp":  {"csp", "-n", "5"},
		"tiny permanent": {"permanent", "-n", "1"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			if err := run(args); err == nil {
				t.Fatalf("run(%v) succeeded, want error", args)
			}
		})
	}
}

func TestRunJobsManifest(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "jobs.txt")
	if err := os.WriteFile(manifest, []byte(`
# mixed workload
triangles n=20 p=0.3 seed=7
permanent n=6 seed=2
cnfsat    vars=8 clauses=10 seed=3
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"jobs", "-manifest", manifest, "-nodes", "2", "-trials", "1", "-poll", "0"}); err != nil {
		t.Fatalf("jobs run: %v", err)
	}
}

func TestRunJobsManifestErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string][]string{
		"no manifest":   {"jobs"},
		"missing file":  {"jobs", "-manifest", filepath.Join(dir, "absent.txt")},
		"empty":         {"jobs", "-manifest", write("empty.txt", "# nothing\n")},
		"unknown kind":  {"jobs", "-manifest", write("kind.txt", "frobnicate n=3\n")},
		"bad field":     {"jobs", "-manifest", write("field.txt", "triangles n=x\n")},
		"not key=value": {"jobs", "-manifest", write("kv.txt", "triangles n\n")},
		"bad clique k":  {"jobs", "-manifest", write("k.txt", "cliques n=7 k=5\n")},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			if err := run(args); err == nil {
				t.Fatalf("run(%v) succeeded, want error", args)
			}
		})
	}
}
