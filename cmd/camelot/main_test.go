package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSubcommands(t *testing.T) {
	cases := map[string][]string{
		"triangles":  {"triangles", "-n", "20", "-p", "0.3", "-nodes", "2", "-trials", "1"},
		"cliques":    {"cliques", "-n", "7", "-k", "6", "-p", "0.8", "-nodes", "2"},
		"chromatic":  {"chromatic", "-n", "7", "-p", "0.4", "-nodes", "2"},
		"tutte":      {"tutte", "-n", "5", "-edges", "6"},
		"cnfsat":     {"cnfsat", "-vars", "8", "-clauses", "10"},
		"permanent":  {"permanent", "-n", "6"},
		"hamilton":   {"hamilton", "-n", "7", "-p", "0.6"},
		"setcover":   {"setcover", "-n", "8", "-sets", "10", "-t", "3"},
		"ov":         {"ov", "-n", "32", "-t", "8"},
		"conv3sum":   {"conv3sum", "-n", "16", "-bits", "6"},
		"csp":        {"csp", "-n", "6", "-sigma", "2", "-m", "4"},
		"with-liar":  {"triangles", "-n", "16", "-p", "0.3", "-nodes", "4", "-faults", "40", "-lie", "1"},
		"with-crash": {"triangles", "-n", "16", "-p", "0.3", "-nodes", "4", "-faults", "40", "-silence", "2"},
		"coordinate-local": {"coordinate", "-spec", "triangles n=16 p=0.3 seed=2", "-local",
			"-nodes", "2", "-trials", "1"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatalf("run(%v): %v", args, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"no args":        nil,
		"unknown":        {"frobnicate"},
		"bad lie list":   {"triangles", "-lie", "x,y"},
		"bad clique k":   {"cliques", "-k", "5"},
		"beyond radius":  {"triangles", "-n", "16", "-p", "0.3", "-nodes", "2", "-faults", "0", "-lie", "0"},
		"all byzantine":  {"triangles", "-n", "12", "-nodes", "1", "-lie", "0"},
		"oversized csp":  {"csp", "-n", "5"},
		"tiny permanent": {"permanent", "-n", "1"},

		// Cross-flag rules (commonFlags.validate): each contradictory
		// combination dies up front with one line.
		"repair sans erasures": {"triangles", "-repair", "1"},
		"grace sans erasures":  {"triangles", "-grace", "1s"},
		"drop sans erasures":   {"triangles", "-dropnodes", "1"},
		"listen plus shards":   {"triangles", "-listen", "127.0.0.1:0", "-shards", "2"},
		"rate beyond 1":        {"triangles", "-droprate", "1.5", "-erasures", "1"},
		"negative rate":        {"triangles", "-droprate", "-0.1", "-erasures", "1"},
		"malformed tcp":        {"triangles", "-tcp", "not-an-address"},
		"malformed listen":     {"triangles", "-listen", "127.0.0.1"},
		"zero nodes":           {"triangles", "-nodes", "0"},

		// coordinate/node flag contracts.
		"coordinate sans spec":    {"coordinate", "-local"},
		"coordinate no mode":      {"coordinate", "-spec", "triangles"},
		"coordinate both modes":   {"coordinate", "-spec", "triangles", "-local", "-listen", "127.0.0.1:0"},
		"coordinate bad spec":     {"coordinate", "-spec", "frobnicate n=3", "-local"},
		"coordinate lossy remote": {"coordinate", "-spec", "triangles", "-listen", "127.0.0.1:0", "-dropnodes", "1", "-erasures", "1"},
		"coordinate tcp remote":   {"coordinate", "-spec", "triangles", "-listen", "127.0.0.1:0", "-tcp", "127.0.0.1:9"},
		"node sans join":          {"node"},
		"node bad join":           {"node", "-join", "not-an-address"},
		"node negative owner":     {"node", "-join", "127.0.0.1:9", "-fail-owner", "-1"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			if err := run(args); err == nil {
				t.Fatalf("run(%v) succeeded, want error", args)
			}
		})
	}
}

func TestRunJobsManifest(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "jobs.txt")
	if err := os.WriteFile(manifest, []byte(`
# mixed workload
triangles n=20 p=0.3 seed=7
permanent n=6 seed=2
cnfsat    vars=8 clauses=10 seed=3
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"jobs", "-manifest", manifest, "-nodes", "2", "-trials", "1", "-poll", "0"}); err != nil {
		t.Fatalf("jobs run: %v", err)
	}
}

func TestRunJobsManifestErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string][]string{
		"no manifest":   {"jobs"},
		"missing file":  {"jobs", "-manifest", filepath.Join(dir, "absent.txt")},
		"empty":         {"jobs", "-manifest", write("empty.txt", "# nothing\n")},
		"unknown kind":  {"jobs", "-manifest", write("kind.txt", "frobnicate n=3\n")},
		"bad field":     {"jobs", "-manifest", write("field.txt", "triangles n=x\n")},
		"not key=value": {"jobs", "-manifest", write("kv.txt", "triangles n\n")},
		"bad clique k":  {"jobs", "-manifest", write("k.txt", "cliques n=7 k=5\n")},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			if err := run(args); err == nil {
				t.Fatalf("run(%v) succeeded, want error", args)
			}
		})
	}
}
