package main

// The serve subcommand: a long-lived proof service over one cluster.
// Cluster geometry comes from the common flags (nodes, parallelism,
// transport, fault tolerance); service policy — admission bounds,
// per-tenant contracts — from the serve-specific ones. See the Server
// type in the root package for the endpoint semantics.

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"camelot"
)

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
	queue := fs.Int("queue", 16, "max proofs in preparation across all tenants (further submissions get 429)")
	perTenant := fs.Int("tenant-inflight", 4, "default per-tenant in-flight preparation cap")
	tenants := fs.String("tenants", "", "explicit tenant contracts as name=maxinflight:priority, comma-separated (e.g. alice=8:3,bob=2:1)")
	retryAfter := fs.Duration("retry-after", time.Second, "backoff hint attached to 429 refusals")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// splitOptions validates the shared flags; serve uses the cluster
	// scope directly and folds the run scope into the service config.
	_, clusterOpts, err := cf.splitOptions()
	if err != nil {
		return err
	}
	contracts, err := parseTenantContracts(*tenants)
	if err != nil {
		return err
	}

	cl := camelot.NewCluster(clusterOpts...)
	defer cl.Close()
	srv := camelot.NewServer(cl, camelot.ServerConfig{
		FaultTolerance:     cf.faults,
		MaxErasures:        cf.erasures,
		MaxRepairRounds:    cf.repair,
		VerifyTrials:       cf.trials,
		VerifySeed:         cf.seed,
		MaxQueueDepth:      *queue,
		DefaultMaxInFlight: *perTenant,
		RetryAfter:         *retryAfter,
		Tenants:            contracts,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Printf("proof service listening on %s (nodes=%d faults=%d queue=%d)\n",
		ln.Addr(), cf.nodes, cf.faults, *queue)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shutdownCtx)
	}
}

// parseTenantContracts parses "name=maxinflight:priority,..." (priority
// optional, default 1).
func parseTenantContracts(s string) (map[string]camelot.TenantConfig, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]camelot.TenantConfig)
	for _, part := range strings.Split(s, ",") {
		name, contract, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad tenant contract %q (want name=maxinflight:priority)", part)
		}
		capStr, prioStr, hasPrio := strings.Cut(contract, ":")
		maxInFlight, err := strconv.Atoi(capStr)
		if err != nil || maxInFlight < 1 {
			return nil, fmt.Errorf("bad tenant contract %q: maxinflight must be a positive integer", part)
		}
		prio := 1
		if hasPrio {
			if prio, err = strconv.Atoi(prioStr); err != nil || prio < 1 {
				return nil, fmt.Errorf("bad tenant contract %q: priority must be a positive integer", part)
			}
		}
		out[name] = camelot.TenantConfig{MaxInFlight: maxInFlight, Priority: prio}
	}
	return out, nil
}
