// Command camelot runs Camelot computations from the command line: pick a
// problem subcommand, a workload size, a node count, and optionally a
// byzantine adversary, and it prepares, error-corrects, and verifies the
// proof, printing the framework report.
//
// Usage:
//
//	camelot cliques   -n 10 -k 6 -nodes 8 -faults 200 -lie 2
//	camelot triangles -n 48 -p 0.2 -nodes 4
//	camelot chromatic -n 10 -p 0.4
//	camelot tutte     -n 6 -edges 8
//	camelot cnfsat    -vars 12 -clauses 20
//	camelot permanent -n 10
//	camelot hamilton  -n 9 -p 0.5
//	camelot setcover  -n 10 -sets 30 -t 4
//	camelot ov        -n 128 -t 16
//	camelot conv3sum  -n 64 -bits 10
//	camelot csp       -n 12 -sigma 2 -m 8
//
// The jobs subcommand runs a whole manifest of problems as concurrent
// jobs on one long-lived cluster (see jobs.go for the manifest format):
//
//	camelot jobs -manifest workload.txt -nodes 4
//
// The serve subcommand exposes the cluster as a multi-tenant HTTP proof
// service with a content-addressed proof cache, per-tenant quotas and
// priorities, and bounded admission (see serve.go and ARCHITECTURE.md
// "Proof service"):
//
//	camelot serve -addr 127.0.0.1:8080 -nodes 4 -faults 2 -tenants alice=8:3,bob=2:1
//
// Every subcommand (jobs included) also takes transport fault-simulation
// flags: -shards splits the broadcast bus into per-shard buses with a
// cross-shard relay, -dropnodes/-droprate/-duprate/-delayrate/-maxdelay
// wrap the transport in a seeded lossy network, and -erasures/-grace
// opt the run into the erasure-tolerant quorum gather that survives the
// losses. -repair N allows up to N self-healing gather rounds when the
// losses exceed even the erasure budget — surviving nodes recompute the
// missing ranges and the decode is retried:
//
//	camelot triangles -n 48 -nodes 8 -faults 6 -shards 3 -dropnodes 2 -erasures 2
//	camelot triangles -n 48 -nodes 8 -faults 1 -dropnodes 2,5 -erasures 2 -repair 1
//
// The -tcp/-listen flags carry the share broadcasts over real sockets
// instead of an in-memory bus: -tcp gives the address senders dial (the
// collector binds it too), -listen overrides the bind address or — alone
// — makes a loopback cluster on an ephemeral port. The lossy flags layer
// on top, so a chaos run can drop frames off a real TCP stream:
//
//	camelot triangles -n 48 -nodes 8 -listen 127.0.0.1:0
//	camelot triangles -n 20 -nodes 8 -faults 12 -listen 127.0.0.1:0 -dropnodes 2 -erasures 1
//
// The coordinate/node pair runs one workload across real OS processes:
// a coordinator serves point-range assignments over the control
// protocol and worker daemons evaluate them (see remote.go and
// ARCHITECTURE.md "Multi-process deployment"):
//
//	camelot coordinate -spec "triangles n=24 p=0.3 seed=7" -listen 127.0.0.1:9000 -workers 2 -secret s
//	camelot node -join 127.0.0.1:9000 -secret s
package main

import (
	"context"
	"flag"
	"fmt"
	"math/big"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"camelot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "camelot: %v\n", err)
		os.Exit(1)
	}
}

// commonFlags holds the framework options shared by every subcommand.
type commonFlags struct {
	nodes, faults, trials int
	parallelism           int
	seed                  int64
	lie, silence, equiv   string

	// Transport fault simulation (sharded/lossy networks).
	shards                       int
	dropNodes                    string
	dropRate, dupRate, delayRate float64
	maxDelay                     time.Duration
	erasures                     int
	grace                        time.Duration
	repair                       int

	// Networked transport (NodeShares frames over TCP).
	tcpAddr    string
	listenAddr string
}

func (cf *commonFlags) register(fs *flag.FlagSet) {
	fs.IntVar(&cf.nodes, "nodes", 4, "number of compute nodes K")
	fs.IntVar(&cf.faults, "faults", 0, "fault tolerance f (codeword length e = d+1+2f)")
	fs.IntVar(&cf.trials, "trials", 2, "verification trials")
	fs.IntVar(&cf.parallelism, "parallelism", 0, "worker pool size driving the K nodes (0 = GOMAXPROCS)")
	fs.Int64Var(&cf.seed, "seed", 1, "randomness seed")
	fs.StringVar(&cf.lie, "lie", "", "comma-separated node ids that broadcast garbage")
	fs.StringVar(&cf.silence, "silence", "", "comma-separated node ids that crash")
	fs.StringVar(&cf.equiv, "equivocate", "", "comma-separated node ids that equivocate")
	fs.IntVar(&cf.shards, "shards", 0, "partition nodes into this many per-shard buses with a cross-shard relay (0 = one broadcast bus)")
	fs.StringVar(&cf.dropNodes, "dropnodes", "", "comma-separated node ids whose broadcasts the network always loses")
	fs.Float64Var(&cf.dropRate, "droprate", 0, "probability a node's broadcast is dropped")
	fs.Float64Var(&cf.dupRate, "duprate", 0, "probability a broadcast is delivered twice")
	fs.Float64Var(&cf.delayRate, "delayrate", 0, "probability a broadcast is delayed")
	fs.DurationVar(&cf.maxDelay, "maxdelay", 20*time.Millisecond, "upper bound on injected delivery delay")
	fs.IntVar(&cf.erasures, "erasures", 0, "tolerate losing up to this many node broadcasts (decoded as erasures)")
	fs.DurationVar(&cf.grace, "grace", 0, "erasure-tolerant gather grace timer (0 = framework default)")
	fs.IntVar(&cf.repair, "repair", 0, "self-healing gather: retry decode failures with up to this many repair rounds (needs -erasures)")
	fs.StringVar(&cf.tcpAddr, "tcp", "", "carry share broadcasts over TCP: senders dial (and the collector binds) this address")
	fs.StringVar(&cf.listenAddr, "listen", "", "TCP collector bind address when it differs from -tcp; alone, a loopback cluster dialing the bound address (use 127.0.0.1:0 for an ephemeral port)")
}

// validate applies every cross-flag rule up front, so a contradictory
// invocation dies with one friendly line instead of a mid-run hang or a
// deep framework error. splitOptions calls it first; subcommands with
// extra flags (coordinate) layer their own checks on top.
func (cf *commonFlags) validate() error {
	if cf.nodes < 1 {
		return fmt.Errorf("-nodes must be at least 1, got %d", cf.nodes)
	}
	if cf.faults < 0 {
		return fmt.Errorf("-faults must be >= 0, got %d", cf.faults)
	}
	if cf.trials < 0 {
		return fmt.Errorf("-trials must be >= 0, got %d", cf.trials)
	}
	if cf.shards < 0 || cf.erasures < 0 || cf.repair < 0 {
		return fmt.Errorf("-shards/-erasures/-repair must be >= 0")
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"-droprate", cf.dropRate}, {"-duprate", cf.dupRate}, {"-delayrate", cf.delayRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("%s is a probability: want 0..1, got %g", r.name, r.v)
		}
	}
	if (cf.tcpAddr != "" || cf.listenAddr != "") && cf.shards > 0 {
		return fmt.Errorf("-tcp/-listen and -shards are mutually exclusive: a run uses one transport")
	}
	for _, a := range []struct{ name, addr string }{{"-tcp", cf.tcpAddr}, {"-listen", cf.listenAddr}} {
		if a.addr == "" {
			continue
		}
		if _, _, err := net.SplitHostPort(a.addr); err != nil {
			return fmt.Errorf("%s %q is not a host:port address (try 127.0.0.1:0 for an ephemeral port)", a.name, a.addr)
		}
	}
	if (cf.dropNodes != "" || cf.dropRate > 0 || cf.dupRate > 0) && cf.erasures <= 0 {
		return fmt.Errorf("-dropnodes/-droprate/-duprate need -erasures N: a strict gather waits forever for lost messages")
	}
	if cf.repair > 0 && cf.erasures <= 0 {
		return fmt.Errorf("-repair needs -erasures N: a strict gather has no missing nodes to repair")
	}
	if cf.grace > 0 && cf.erasures <= 0 {
		return fmt.Errorf("-grace needs -erasures N: only the erasure-tolerant gather has a grace timer")
	}
	return nil
}

// splitOptions resolves the flags into the session API's two scopes:
// cluster-scoped (nodes, pool width) and run-scoped (faults, seed,
// trials, adversary). The jobs subcommand feeds them to NewCluster and
// Submit respectively; the one-shot subcommands merge them back.
func (cf *commonFlags) splitOptions() ([]camelot.RunOption, []camelot.ClusterOption, error) {
	if err := cf.validate(); err != nil {
		return nil, nil, err
	}
	cluster := []camelot.ClusterOption{
		camelot.WithNodes(cf.nodes),
		camelot.WithMaxParallelism(cf.parallelism),
	}
	run := []camelot.RunOption{
		camelot.WithFaultTolerance(cf.faults),
		camelot.WithSeed(cf.seed),
		camelot.WithVerifyTrials(cf.trials),
	}
	parse := func(s string) ([]int, error) {
		if s == "" {
			return nil, nil
		}
		parts := strings.Split(s, ",")
		ids := make([]int, 0, len(parts))
		for _, p := range parts {
			id, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("bad node id %q", p)
			}
			ids = append(ids, id)
		}
		return ids, nil
	}
	if cf.shards > 0 {
		cluster = append(cluster, camelot.WithShardedTransport(cf.shards))
	}
	// TCP before the lossy wrapper below, so injected faults ride the
	// real socket path (loopback chaos).
	if cf.tcpAddr != "" {
		cluster = append(cluster, camelot.WithTCPTransport(cf.tcpAddr))
	}
	if cf.listenAddr != "" {
		cluster = append(cluster, camelot.WithListenAddr(cf.listenAddr))
	}
	dropIDs, err := parse(cf.dropNodes)
	if err != nil {
		return nil, nil, err
	}
	if len(dropIDs) > 0 || cf.dropRate > 0 || cf.dupRate > 0 || cf.delayRate > 0 {
		// The lossy wrapper layers over whatever came before it — the
		// sharded network when -shards is set, the plain bus otherwise.
		cluster = append(cluster, camelot.WithLossyTransport(camelot.LossyConfig{
			Seed:      cf.seed,
			DropNodes: dropIDs,
			DropRate:  cf.dropRate,
			DupRate:   cf.dupRate,
			DelayRate: cf.delayRate,
			MaxDelay:  cf.maxDelay,
		}))
	}
	if cf.erasures > 0 {
		run = append(run, camelot.WithMaxErasures(cf.erasures))
	}
	if cf.grace > 0 {
		run = append(run, camelot.WithGatherGrace(cf.grace))
	}
	if cf.repair > 0 {
		run = append(run, camelot.WithMaxRepairRounds(cf.repair))
	}
	if ids, err := parse(cf.lie); err != nil {
		return nil, nil, err
	} else if len(ids) > 0 {
		run = append(run, camelot.WithAdversary(camelot.LyingNodes(uint64(cf.seed), ids...)))
	}
	if ids, err := parse(cf.silence); err != nil {
		return nil, nil, err
	} else if len(ids) > 0 {
		run = append(run, camelot.WithAdversary(camelot.SilentNodes(ids...)))
	}
	if ids, err := parse(cf.equiv); err != nil {
		return nil, nil, err
	} else if len(ids) > 0 {
		run = append(run, camelot.WithAdversary(camelot.EquivocatingNodes(uint64(cf.seed), ids...)))
	}
	return run, cluster, nil
}

func (cf *commonFlags) options() ([]camelot.Option, error) {
	run, cluster, err := cf.splitOptions()
	if err != nil {
		return nil, err
	}
	opts := make([]camelot.Option, 0, len(run)+len(cluster))
	for _, o := range cluster {
		opts = append(opts, o)
	}
	for _, o := range run {
		opts = append(opts, o)
	}
	return opts, nil
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: camelot <cliques|triangles|chromatic|tutte|cnfsat|permanent|hamilton|setcover|ov|conv3sum|csp|jobs|serve|coordinate|node> [flags]")
	}
	ctx := context.Background()
	sub, rest := args[0], args[1:]
	switch sub {
	case "jobs":
		return runJobs(rest)
	case "serve":
		return runServe(rest)
	case "coordinate":
		return runCoordinate(ctx, rest)
	case "node":
		return runNode(ctx, rest)
	}
	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)

	switch sub {
	case "cliques":
		n := fs.Int("n", 9, "vertices")
		k := fs.Int("k", 6, "clique size (multiple of 6)")
		p := fs.Float64("p", 0.6, "edge probability")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		opts, err := cf.options()
		if err != nil {
			return err
		}
		g := camelot.RandomGraph(*n, *p, cf.seed)
		count, rep, err := camelot.CountCliques(ctx, g, *k, opts...)
		return report(fmt.Sprintf("%d-cliques", *k), count, rep, err)

	case "triangles":
		n := fs.Int("n", 48, "vertices")
		p := fs.Float64("p", 0.2, "edge probability")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		opts, err := cf.options()
		if err != nil {
			return err
		}
		g := camelot.RandomGraph(*n, *p, cf.seed)
		count, rep, err := camelot.CountTriangles(ctx, g, opts...)
		return report("triangles", count, rep, err)

	case "chromatic":
		n := fs.Int("n", 10, "vertices")
		p := fs.Float64("p", 0.4, "edge probability")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		opts, err := cf.options()
		if err != nil {
			return err
		}
		g := camelot.RandomGraph(*n, *p, cf.seed)
		coeffs, rep, err := camelot.ChromaticPolynomial(ctx, g, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("χ_G(t) coefficients (c_0..c_%d): %v\n", len(coeffs)-1, coeffs)
		printReport(rep)
		return nil

	case "tutte":
		n := fs.Int("n", 6, "vertices")
		edges := fs.Int("edges", 8, "edge count (multigraph, drawn uniformly)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		opts, err := cf.options()
		if err != nil {
			return err
		}
		mg := camelot.RandomMultigraph(*n, *edges, cf.seed)
		start := time.Now()
		res, err := camelot.TuttePolynomial(ctx, mg, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("Tutte polynomial recovered in %v over %d Fortuin–Kasteleyn lines\n",
			time.Since(start).Round(time.Millisecond), len(res.Reports))
		fmt.Printf("  spanning trees T(1,1) = %v\n", camelot.EvalTutte(res.T, 1, 1))
		fmt.Printf("  forests        T(2,1) = %v\n", camelot.EvalTutte(res.T, 2, 1))
		fmt.Printf("  2^m check      T(2,2) = %v\n", camelot.EvalTutte(res.T, 2, 2))
		printReport(res.Reports[0])
		return nil

	case "cnfsat":
		vars := fs.Int("vars", 12, "variables")
		clauses := fs.Int("clauses", 20, "clauses")
		width := fs.Int("width", 3, "literals per clause")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		opts, err := cf.options()
		if err != nil {
			return err
		}
		f := camelot.RandomCNF(*vars, *clauses, *width, cf.seed)
		count, rep, err := camelot.CountCNFSolutions(ctx, f, opts...)
		return report("#SAT", count, rep, err)

	case "permanent":
		n := fs.Int("n", 10, "matrix dimension")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		opts, err := cf.options()
		if err != nil {
			return err
		}
		a := camelot.RandomIntMatrix(*n, cf.seed)
		per, rep, err := camelot.Permanent(ctx, a, opts...)
		return report("permanent", per, rep, err)

	case "hamilton":
		n := fs.Int("n", 9, "vertices")
		p := fs.Float64("p", 0.5, "edge probability")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		opts, err := cf.options()
		if err != nil {
			return err
		}
		g := camelot.RandomGraph(*n, *p, cf.seed)
		count, rep, err := camelot.CountHamiltonianCycles(ctx, g, opts...)
		return report("hamiltonian cycles", count, rep, err)

	case "setcover":
		n := fs.Int("n", 10, "universe size")
		sets := fs.Int("sets", 30, "family size")
		t := fs.Int("t", 4, "cover size")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		opts, err := cf.options()
		if err != nil {
			return err
		}
		fam := randomFamily(*n, *sets, cf.seed)
		count, rep, err := camelot.CountSetCovers(ctx, fam, *n, *t, opts...)
		return report(fmt.Sprintf("%d-covers", *t), count, rep, err)

	case "ov":
		n := fs.Int("n", 128, "vectors per side")
		t := fs.Int("t", 16, "dimension")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		opts, err := cf.options()
		if err != nil {
			return err
		}
		a := camelot.RandomBoolMatrix(*n, *t, 0.3, cf.seed)
		b := camelot.RandomBoolMatrix(*n, *t, 0.3, cf.seed+1)
		counts, rep, err := camelot.CountOrthogonalPairs(ctx, *n, *t, a, b, opts...)
		if err != nil {
			return err
		}
		total := int64(0)
		for _, c := range counts {
			total += c
		}
		fmt.Printf("orthogonal pairs: %d\n", total)
		printReport(rep)
		return nil

	case "conv3sum":
		n := fs.Int("n", 64, "array length (even)")
		bits := fs.Int("bits", 10, "integer bit width")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		opts, err := cf.options()
		if err != nil {
			return err
		}
		a := randomArray(*n, *bits, cf.seed)
		counts, rep, err := camelot.Convolution3SUM(ctx, a, *bits, opts...)
		if err != nil {
			return err
		}
		total := int64(0)
		for _, c := range counts {
			total += c
		}
		fmt.Printf("convolution-3SUM solutions: %d\n", total)
		printReport(rep)
		return nil

	case "csp":
		n := fs.Int("n", 12, "variables (multiple of 6)")
		sigma := fs.Int("sigma", 2, "alphabet size")
		m := fs.Int("m", 8, "constraints")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		opts, err := cf.options()
		if err != nil {
			return err
		}
		sys := randomCSP(*n, *sigma, *m, cf.seed)
		dist, rep, err := camelot.CSPDistribution(ctx, sys, opts...)
		if err != nil {
			return err
		}
		fmt.Println("assignments by satisfied-constraint count:")
		for k, v := range dist {
			if v.Sign() != 0 {
				fmt.Printf("  %2d satisfied: %v\n", k, v)
			}
		}
		printReport(rep)
		return nil

	default:
		return fmt.Errorf("unknown subcommand %q", sub)
	}
}

func report(label string, count *big.Int, rep *camelot.Report, err error) error {
	if err != nil {
		return err
	}
	fmt.Printf("%s: %v\n", label, count)
	printReport(rep)
	return nil
}

func printReport(rep *camelot.Report) {
	fmt.Printf("  problem        %s\n", rep.Problem)
	fmt.Printf("  nodes          %d (byzantine: %v, identified: %v, undelivered: %v)\n",
		rep.Nodes, rep.ByzantineNodes, rep.SuspectNodes, rep.MissingNodes)
	if rep.RepairRounds > 0 {
		fmt.Printf("  repair         %d round(s), recovered nodes %v\n",
			rep.RepairRounds, rep.RepairedNodes)
	}
	fmt.Printf("  proof          degree %d, %d symbols over primes %v\n",
		rep.Degree, rep.ProofSymbols, rep.Primes)
	fmt.Printf("  codeword       %d points, tolerance %d, corrupted shares seen %d\n",
		rep.CodeLength, rep.FaultTolerance, rep.CorruptedShares)
	fmt.Printf("  compute        wall %v, max/node %v, total %v\n",
		rep.ComputeWall.Round(time.Microsecond),
		rep.MaxNodeCompute.Round(time.Microsecond),
		rep.TotalNodeCompute.Round(time.Microsecond))
	fmt.Printf("  decode         wall %v\n", rep.DecodeWall.Round(time.Microsecond))
	fmt.Printf("  verification   %d trial(s), %v each, accepted=%v\n",
		rep.VerifyTrials, rep.VerifyPerTrial.Round(time.Microsecond), rep.Verified)
}
