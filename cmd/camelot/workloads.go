package main

import (
	"math/rand"

	"camelot"
)

// randomCNF and randomMatrix moved to the facade (camelot.RandomCNF,
// camelot.RandomIntMatrix) so workload specs build identically in every
// process of a multi-node deployment.

// randomFamily draws nonempty subsets of [n].
func randomFamily(n, size int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	full := uint64(1)<<uint(n) - 1
	fam := make([]uint64, 0, size)
	for len(fam) < size {
		x := rng.Uint64() & full
		if x != 0 {
			fam = append(fam, x)
		}
	}
	return fam
}

// randomArray draws n values of the given bit width.
func randomArray(n, bits int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % (1 << uint(bits))
	}
	return a
}

// randomCSP draws m random binary constraints with density 1/2.
func randomCSP(n, sigma, m int, seed int64) *camelot.CSPSystem {
	rng := rand.New(rand.NewSource(seed))
	sys := &camelot.CSPSystem{N: n, Sigma: sigma, Constraints: make([]camelot.CSPConstraint, m)}
	for i := range sys.Constraints {
		u := rng.Intn(n)
		v := rng.Intn(n)
		for v == u {
			v = rng.Intn(n)
		}
		table := make([]bool, sigma*sigma)
		for j := range table {
			table[j] = rng.Intn(2) == 1
		}
		sys.Constraints[i] = camelot.CSPConstraint{U: u, V: v, Allowed: table}
	}
	return sys
}
