package main

// The coordinate and node subcommands: one Camelot run across real OS
// processes. `coordinate` parses a workload spec, binds the control
// listener, and drives the engine with the coordinator transport —
// every point range is shipped to whatever worker daemons join;
// `node` is that daemon. The same binary serves both roles, so the
// workload registry (camelot.ParseWorkload's kinds) is identical on
// each side and the proof is bit-identical to an in-process run.
//
//	camelot coordinate -spec "triangles n=24 p=0.3 seed=7" -listen 127.0.0.1:9000 -workers 2 -secret s
//	camelot node -join 127.0.0.1:9000 -secret s
//
// `coordinate -local` runs the same spec in-process instead — the
// reference mode deployments diff their proofs against:
//
//	camelot coordinate -spec "triangles n=24 p=0.3 seed=7" -local -proofout proof.bin

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"camelot"
)

// runCoordinate is the coordinate subcommand body.
func runCoordinate(ctx context.Context, rest []string) error {
	fs := flag.NewFlagSet("coordinate", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	spec := fs.String("spec", "", "workload spec `kind key=value ...` (required; the jobs manifest grammar)")
	local := fs.Bool("local", false, "run the workload in-process instead of serving workers (reference mode)")
	workers := fs.Int("workers", 1, "joined workers the initial round waits for")
	secret := fs.String("secret", "", "shared cluster secret enabling per-frame authentication (must match the workers')")
	joinTimeout := fs.Duration("jointimeout", 30*time.Second, "how long to wait for -workers workers to join")
	proofOut := fs.String("proofout", "", "write the marshalled proof to this file")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *spec == "" {
		return fmt.Errorf("coordinate: -spec \"kind key=value ...\" is required")
	}
	if *local == (cf.listenAddr != "") {
		return fmt.Errorf("coordinate: exactly one of -local or -listen <addr> picks where the workload runs")
	}
	if *workers < 1 {
		return fmt.Errorf("coordinate: -workers must be at least 1, got %d", *workers)
	}
	if *local {
		w, err := camelot.ParseWorkload(*spec)
		if err != nil {
			return fmt.Errorf("coordinate: %w", err)
		}
		opts, err := cf.options()
		if err != nil {
			return err
		}
		proof, rep, err := camelot.RunProblem(ctx, w.Problem, opts...)
		if err != nil {
			return err
		}
		return finishCoordinate(w, proof, rep, *proofOut)
	}
	// Remote mode: the coordinator IS the transport, so the in-process
	// transport-shaping flags have nothing to attach to.
	if cf.tcpAddr != "" || cf.shards > 0 {
		return fmt.Errorf("coordinate: -tcp/-shards shape in-process transports; remote runs use the coordinator's -listen")
	}
	if cf.dropNodes != "" || cf.dropRate > 0 || cf.dupRate > 0 || cf.delayRate > 0 {
		return fmt.Errorf("coordinate: the lossy flags shape in-process transports; fault-inject remote runs by killing workers (node -fail-owner)")
	}
	listen := cf.listenAddr
	cf.listenAddr = "" // consumed by the coordinator, not the TCP transport options
	runOpts, clusterOpts, err := cf.splitOptions()
	if err != nil {
		return err
	}
	co, err := camelot.NewCoordinator(cf.nodes, camelot.CoordinatorConfig{
		Workload:    *spec,
		ListenAddr:  listen,
		Secret:      []byte(*secret),
		MinWorkers:  *workers,
		JoinTimeout: *joinTimeout,
	})
	if err != nil {
		return err
	}
	defer co.Close()
	// Announced before the run starts, so process managers (and the
	// multiproc example) can parse the bound address and launch workers.
	fmt.Printf("coordinator listening on %s\n", co.Addr())
	opts := make([]camelot.Option, 0, len(clusterOpts)+len(runOpts)+1)
	for _, o := range clusterOpts {
		opts = append(opts, o)
	}
	opts = append(opts, co.AsTransport())
	for _, o := range runOpts {
		opts = append(opts, o)
	}
	proof, rep, err := camelot.RunProblem(ctx, co.Workload().Problem, opts...)
	if err != nil {
		return err
	}
	return finishCoordinate(co.Workload(), proof, rep, *proofOut)
}

// finishCoordinate recovers and prints the count, the framework report,
// and optionally the marshalled proof — identical output for local and
// remote modes, so the two are diffable.
func finishCoordinate(w *camelot.Workload, proof *camelot.Proof, rep *camelot.Report, proofOut string) error {
	count, err := w.Problem.Count(proof)
	if err != nil {
		return fmt.Errorf("recovering count: %w", err)
	}
	if err := report(w.Kind, count, rep, nil); err != nil {
		return err
	}
	if proofOut != "" {
		raw, err := proof.MarshalBinary()
		if err != nil {
			return fmt.Errorf("marshalling proof: %w", err)
		}
		if err := os.WriteFile(proofOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("proof written to %s (%d bytes)\n", proofOut, len(raw))
	}
	return nil
}

// runNode is the node subcommand body: the worker daemon.
func runNode(ctx context.Context, rest []string) error {
	fs := flag.NewFlagSet("node", flag.ContinueOnError)
	join := fs.String("join", "", "coordinator host:port to join (required)")
	secret := fs.String("secret", "", "shared cluster secret (must match the coordinator's)")
	name := fs.String("name", "", "display name sent in the hello (defaults to the local address)")
	failOwner := fs.Int("fail-owner", 0, "crash when a round-0 assignment names this logical node (fault-injection knob; 0 = off)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *join == "" {
		return fmt.Errorf("node: -join <host:port> is required")
	}
	if _, _, err := net.SplitHostPort(*join); err != nil {
		return fmt.Errorf("node: -join %q is not a host:port address", *join)
	}
	if *failOwner < 0 {
		return fmt.Errorf("node: -fail-owner must be >= 0, got %d", *failOwner)
	}
	if err := camelot.ServeNode(ctx, camelot.NodeConfig{
		Join:      *join,
		Secret:    []byte(*secret),
		Name:      *name,
		FailOwner: *failOwner,
	}); err != nil {
		return err
	}
	fmt.Println("node: run complete")
	return nil
}
