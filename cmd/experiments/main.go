// Command experiments reproduces the paper's per-theorem claims (the
// paper is an extended abstract without numbered tables; DESIGN.md maps
// theorems to experiment ids E1..E13). Each experiment prints a markdown
// table that EXPERIMENTS.md records, comparing the Camelot execution
// against the best sequential baseline and checking the claimed shape:
// proof sizes, per-node times, total-work ratios, fault tolerance, and
// soundness.
//
// Usage: experiments [-quick] [-only E1,E6,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sweeps (CI-sized)")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	flag.Parse()

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	all := []struct {
		id   string
		name string
		run  func(quick bool)
	}{
		{"E1", "Theorem 1: k-clique Camelot vs sequential", runE1},
		{"E2", "Theorem 2/13: (6,2)-form circuits", runE2},
		{"E3", "Theorem 3: Camelot triangles, proof ~ n^ω/m", runE3},
		{"E4", "Theorem 4: split/sparse triangle counting", runE4},
		{"E5", "Theorem 5: AYZ-bound parallel triangles", runE5},
		{"E6", "Theorem 6: chromatic polynomial 2^{n/2}", runE6},
		{"E7", "Theorem 7: Tutte polynomial 2^{n/3} proof", runE7},
		{"E8", "Theorem 8: #CNFSAT / permanent / Hamilton 2^{n/2}", runE8},
		{"E9", "Theorems 9-10: set covers and partitions", runE9},
		{"E10", "Theorem 11: OV / Hamming / Conv3SUM", runE10},
		{"E11", "Theorem 12: 2-CSP enumeration", runE11},
		{"E12", "Framework: robustness and soundness", runE12},
		{"E13", "Framework: K-node speedup tradeoff", runE13},
	}
	for _, exp := range all {
		if len(wanted) > 0 && !wanted[exp.id] {
			continue
		}
		fmt.Printf("\n## %s — %s\n\n", exp.id, exp.name)
		exp.run(*quick)
	}
	_ = os.Stdout
}
