package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"camelot/internal/cliques"
	"camelot/internal/core"
	"camelot/internal/csp"
	"camelot/internal/ff"
	"camelot/internal/graph"
	"camelot/internal/matrix"
	"camelot/internal/orthvec"
	"camelot/internal/tensor"
	"camelot/internal/triangles"
)

// timed runs fn and returns its wall-clock duration.
func timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// ms renders a duration in milliseconds with a stable width.
func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }

// runE1 sweeps 6-clique instances: the Camelot run must stay within a
// constant factor of the Nešetřil–Poljak sequential total while adding
// distribution + verifiability, with proof size O(n^{ωk/6}) = O(R).
func runE1(quick bool) {
	sizes := []int{8, 9, 10}
	if quick {
		sizes = []int{8}
	}
	fmt.Println("| n | count | seq NP (ms) | camelot total (ms) | per-node max (ms) | nodes | proof symbols | verify/trial (ms) |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for _, n := range sizes {
		g := graph.Gnp(n, 0.7, int64(n))
		var seqCount interface{ String() string }
		seqTime := timed(func() {
			c, err := cliques.CountNesetrilPoljak(g, 6)
			if err != nil {
				panic(err)
			}
			seqCount = c
		})
		p, err := cliques.NewProblem(g, 6, tensor.Strassen())
		if err != nil {
			panic(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 8, Seed: 1, DecodingNodes: 1})
		if err != nil {
			panic(err)
		}
		count, err := p.Recover(proof)
		if err != nil {
			panic(err)
		}
		if count.String() != seqCount.String() {
			panic(fmt.Sprintf("E1 mismatch at n=%d: %v vs %v", n, count, seqCount))
		}
		fmt.Printf("| %d | %v | %s | %s | %s | %d | %d | %s |\n",
			n, count, ms(seqTime), ms(rep.TotalNodeCompute), ms(rep.MaxNodeCompute),
			rep.Nodes, rep.ProofSymbols, ms(rep.VerifyPerTrial))
	}
}

// runE2 compares the three (6,2)-form circuits: direct O(N^6),
// Nešetřil–Poljak O(N^{2ω}) time / O(N^4) space, and the new Theorem 13
// parts design with O(N²) space — allocation deltas stand in for space.
func runE2(quick bool) {
	sizes := []int{4, 8}
	if quick {
		sizes = []int{4}
	}
	fmt.Println("| N | direct (ms) | NP (ms) | NP allocs (MB) | parts (ms) | parts allocs (MB) | agree |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, n := range sizes {
		g := graph.Gnp(n, 0.7, int64(n))
		sm, err := cliques.BuildSubsetMatrix(g, 1)
		if err != nil {
			panic(err)
		}
		f := ff.Must(1048583)
		chi, err := matrix.FromSlice(f, sm.N, sm.N, sm.Entries)
		if err != nil {
			panic(err)
		}
		form, err := cliques.NewUniformForm(f, chi)
		if err != nil {
			panic(err)
		}
		var direct, np, parts uint64
		dt := timed(func() { direct = form.EvalDirect() })
		npAlloc := allocDelta(func() { np = form.EvalNesetrilPoljak() })
		npt := lastTimed
		dc, _ := tensor.Strassen().ForSize(sm.N)
		partsAlloc := allocDelta(func() {
			var err error
			parts, err = form.EvalParts(dc, 1)
			if err != nil {
				panic(err)
			}
		})
		pt := lastTimed
		fmt.Printf("| %d | %s | %s | %.2f | %s | %.2f | %v |\n",
			sm.N, ms(dt), ms(npt), npAlloc, ms(pt), partsAlloc, direct == np && np == parts)
	}
}

var lastTimed time.Duration

// allocDelta measures heap allocation (MB) and wall time of fn.
func allocDelta(fn func()) float64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	lastTimed = timed(fn)
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
}

// runE3 sweeps triangle instances: Theorem 3 predicts proof size ~ R/m
// (falling as the graph densifies at fixed n) and per-node time Õ(m).
func runE3(quick bool) {
	sizes := []struct {
		n int
		p float64
	}{{32, 0.15}, {32, 0.45}, {64, 0.1}, {64, 0.3}}
	if quick {
		sizes = sizes[:2]
	}
	fmt.Println("| n | m | proof parts R/m' | degree | per-node max (ms) | seq Itai-Rodeh (ms) | count |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, sz := range sizes {
		g := graph.Gnp(sz.n, sz.p, 7)
		var seq uint64
		seqTime := timed(func() {
			var err error
			seq, err = triangles.CountItaiRodeh(g)
			if err != nil {
				panic(err)
			}
		})
		p, err := triangles.NewProblem(g, tensor.Strassen())
		if err != nil {
			panic(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: 2, DecodingNodes: 1})
		if err != nil {
			panic(err)
		}
		count, err := p.Recover(proof)
		if err != nil {
			panic(err)
		}
		if count.Uint64() != seq {
			panic("E3 count mismatch")
		}
		fmt.Printf("| %d | %d | %d | %d | %s | %s | %v |\n",
			sz.n, g.M(), p.NumParts(), rep.Degree, ms(rep.MaxNodeCompute), ms(seqTime), count)
	}
}

// runE4 compares Theorem 4's split/sparse counter with the dense trace
// and the word-parallel edge iterator.
func runE4(quick bool) {
	sizes := []int{48, 96, 128}
	if quick {
		sizes = []int{48}
	}
	fmt.Println("| n | m | split/sparse (ms) | itai-rodeh (ms) | edge-iter (ms) | agree |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, n := range sizes {
		g := graph.Gnp(n, 8/float64(n), 3)
		var ss, ir, ei uint64
		st := timed(func() {
			var err error
			ss, err = triangles.CountSplitSparse(g, tensor.Strassen(), 0)
			if err != nil {
				panic(err)
			}
		})
		it := timed(func() {
			var err error
			ir, err = triangles.CountItaiRodeh(g)
			if err != nil {
				panic(err)
			}
		})
		et := timed(func() { ei = triangles.CountEdgeIterator(g) })
		fmt.Printf("| %d | %d | %s | %s | %s | %v |\n",
			n, g.M(), ms(st), ms(it), ms(et), ss == ir && ir == ei)
	}
}

// runE5 exercises Theorem 5 on sparse graphs: Δ = m^{(ω-1)/(ω+1)}
// splits the work; the AYZ count must agree with the dense methods.
func runE5(quick bool) {
	sizes := []int{64, 128, 256}
	if quick {
		sizes = []int{64}
	}
	fmt.Println("| n | m | Δ | AYZ (ms) | itai-rodeh (ms) | agree |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, n := range sizes {
		g := graph.Gnp(n, 6/float64(n), 5)
		var ayz, ir uint64
		at := timed(func() {
			var err error
			ayz, err = triangles.CountAYZ(g, tensor.Strassen(), 0)
			if err != nil {
				panic(err)
			}
		})
		it := timed(func() {
			var err error
			ir, err = triangles.CountItaiRodeh(g)
			if err != nil {
				panic(err)
			}
		})
		fmt.Printf("| %d | %d | %d | %s | %s | %v |\n",
			n, g.M(), triangles.Delta(g.M()), ms(at), ms(it), ayz == ir)
	}
}

// runE10 sweeps the near-linear-time problems of Theorem 11.
func runE10(quick bool) {
	fmt.Println("| problem | n | t | naive (ms) | camelot per-node (ms) | proof symbols | agree |")
	fmt.Println("|---|---|---|---|---|---|---|")
	ovSizes := []int{64, 128}
	if quick {
		ovSizes = []int{64}
	}
	for _, n := range ovSizes {
		const t = 12
		a, _ := orthvec.NewBoolMatrix(n, t, bits(n, t, 0.3, 1))
		b, _ := orthvec.NewBoolMatrix(n, t, bits(n, t, 0.3, 2))
		var naive []int64
		nt := timed(func() { naive = orthvec.CountOrthogonalNaive(a, b) })
		p, err := orthvec.NewOVProblem(a, b)
		if err != nil {
			panic(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: 3, DecodingNodes: 1})
		if err != nil {
			panic(err)
		}
		counts, err := p.Counts(proof)
		if err != nil {
			panic(err)
		}
		agree := true
		for i := range counts {
			agree = agree && counts[i] == naive[i]
		}
		fmt.Printf("| orthogonal-vectors | %d | %d | %s | %s | %d | %v |\n",
			n, t, ms(nt), ms(rep.MaxNodeCompute), rep.ProofSymbols, agree)
	}
	// Hamming distribution.
	{
		const n, t = 24, 6
		a, _ := orthvec.NewBoolMatrix(n, t, bits(n, t, 0.5, 4))
		b, _ := orthvec.NewBoolMatrix(n, t, bits(n, t, 0.5, 5))
		var naive [][]int64
		nt := timed(func() { naive = orthvec.HammingDistributionNaive(a, b) })
		p, err := orthvec.NewHammingProblem(a, b)
		if err != nil {
			panic(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: 4, DecodingNodes: 1})
		if err != nil {
			panic(err)
		}
		dist, err := p.Distribution(proof)
		if err != nil {
			panic(err)
		}
		agree := true
		for i := range dist {
			for h := range dist[i] {
				agree = agree && dist[i][h] == naive[i][h]
			}
		}
		fmt.Printf("| hamming-distribution | %d | %d | %s | %s | %d | %v |\n",
			n, t, ms(nt), ms(rep.MaxNodeCompute), rep.ProofSymbols, agree)
	}
	// Convolution3SUM.
	{
		arr := arrayIdentity(24)
		var naive []int64
		nt := timed(func() { naive = conv3sumNaive(arr) })
		p, rep, counts := conv3sumRun(arr, 6)
		agree := true
		for i := range counts {
			agree = agree && counts[i] == naive[i]
		}
		_ = p
		fmt.Printf("| convolution-3sum | %d | %d | %s | %s | %d | %v |\n",
			len(arr), 6, ms(nt), ms(rep.MaxNodeCompute), rep.ProofSymbols, agree)
	}
}

// runE11 runs the 2-CSP enumeration of Theorem 12.
func runE11(quick bool) {
	fmt.Println("| n | σ | m | brute (ms) | camelot per-node (ms) | proof symbols | agree |")
	fmt.Println("|---|---|---|---|---|---|---|")
	cases := []struct{ n, sigma, m int }{{6, 3, 6}, {12, 2, 8}}
	if quick {
		cases = cases[:1]
	}
	for _, cse := range cases {
		sys := csp.RandomSystem(cse.n, cse.sigma, cse.m, 0.5, 9)
		var brute []fmt.Stringer
		bt := timed(func() {
			for _, v := range csp.DistributionBrute(sys) {
				brute = append(brute, v)
			}
		})
		p, err := csp.NewProblem(sys, tensor.Strassen())
		if err != nil {
			panic(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: 5, DecodingNodes: 1})
		if err != nil {
			panic(err)
		}
		dist, err := p.Distribution(proof)
		if err != nil {
			panic(err)
		}
		agree := true
		for k := range dist {
			agree = agree && dist[k].String() == brute[k].String()
		}
		fmt.Printf("| %d | %d | %d | %s | %s | %d | %v |\n",
			cse.n, cse.sigma, cse.m, ms(bt), ms(rep.MaxNodeCompute), rep.ProofSymbols, agree)
	}
}

// runE13 sweeps the node count on a fixed 6-clique instance: the paper's
// optimal tradeoff predicts per-node time E ≈ T/K up to the proof size.
func runE13(quick bool) {
	ks := []int{1, 2, 4, 8, 16}
	if quick {
		ks = []int{1, 4}
	}
	g := graph.Gnp(8, 0.7, 11)
	fmt.Println("| K | e points | points/node | per-node max (ms) | total (ms) | speedup vs K=1 |")
	fmt.Println("|---|---|---|---|---|---|")
	var base time.Duration
	for _, k := range ks {
		p, err := cliques.NewProblem(g, 6, tensor.Strassen())
		if err != nil {
			panic(err)
		}
		_, rep, err := core.Run(context.Background(), p, core.Options{Nodes: k, Seed: 6, DecodingNodes: 1})
		if err != nil {
			panic(err)
		}
		if k == 1 {
			base = rep.MaxNodeCompute
		}
		speedup := float64(base) / float64(rep.MaxNodeCompute)
		fmt.Printf("| %d | %d | %d | %s | %s | %.2fx |\n",
			k, rep.CodeLength, (rep.CodeLength+k-1)/k, ms(rep.MaxNodeCompute),
			ms(rep.TotalNodeCompute), speedup)
	}
}
