package main

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"

	"camelot/internal/chromatic"
	"camelot/internal/cnfsat"
	"camelot/internal/core"
	"camelot/internal/graph"
	"camelot/internal/hamilton"
	"camelot/internal/permanent"
	"camelot/internal/setcover"
	"camelot/internal/tutte"
)

// runE6 sweeps the chromatic polynomial: Camelot degree/proof grows as
// |B|·2^{n/2-1} while the sequential baseline pays 2^n.
func runE6(quick bool) {
	sizes := []int{8, 10, 12}
	if quick {
		sizes = []int{8, 10}
	}
	fmt.Println("| n | m | DC baseline (ms) | camelot total (ms) | per-node max (ms) | degree (~2^{n/2}) | primes | agree |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for _, n := range sizes {
		g := graph.Gnp(n, 0.4, int64(n))
		var want []*big.Int
		dcTime := timed(func() { want = chromatic.DeletionContraction(g) })
		p, err := chromatic.NewProblem(g)
		if err != nil {
			panic(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: 1, DecodingNodes: 1})
		if err != nil {
			panic(err)
		}
		got, err := p.Coefficients(proof)
		if err != nil {
			panic(err)
		}
		agree := len(got) == len(want)
		for i := range want {
			agree = agree && got[i].Cmp(want[i]) == 0
		}
		fmt.Printf("| %d | %d | %s | %s | %s | %d | %d | %v |\n",
			n, g.M(), ms(dcTime), ms(rep.TotalNodeCompute), ms(rep.MaxNodeCompute),
			rep.Degree, len(rep.Primes), agree)
	}
}

// runE7 runs the full Tutte pipeline on small multigraphs: m+1
// Fortuin–Kasteleyn lines, each a width-(n+1) Camelot run with the
// tripartite node function.
func runE7(quick bool) {
	cases := []struct{ n, m int }{{5, 6}, {6, 8}}
	if quick {
		cases = cases[:1]
	}
	fmt.Println("| n | m | DC baseline (ms) | camelot (ms) | FK lines | degree (~2^{n/3}) | T(1,1) | agree |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for _, cse := range cases {
		mg := graph.RandomMultigraph(cse.n, cse.m, int64(cse.n))
		var want [][]*big.Int
		dcTime := timed(func() { want = tutte.DeletionContraction(mg) })
		var res *tutte.Result
		camTime := timed(func() {
			var err error
			res, err = tutte.Compute(context.Background(), mg, core.Options{Nodes: 2, Seed: 2, DecodingNodes: 1})
			if err != nil {
				panic(err)
			}
		})
		agree := tutteAgree(res.T, want)
		fmt.Printf("| %d | %d | %s | %s | %d | %d | %v | %v |\n",
			cse.n, cse.m, ms(dcTime), ms(camTime), len(res.Reports),
			res.Reports[0].Degree, tutte.Eval(res.T, 1, 1), agree)
	}
}

func tutteAgree(a, b [][]*big.Int) bool {
	coeff := func(m [][]*big.Int, i, j int) *big.Int {
		if i < len(m) && j < len(m[i]) {
			return m[i][j]
		}
		return big.NewInt(0)
	}
	rows := len(a)
	if len(b) > rows {
		rows = len(b)
	}
	for i := 0; i < rows; i++ {
		cols := 0
		if i < len(a) {
			cols = len(a[i])
		}
		if i < len(b) && len(b[i]) > cols {
			cols = len(b[i])
		}
		for j := 0; j < cols; j++ {
			if coeff(a, i, j).Cmp(coeff(b, i, j)) != 0 {
				return false
			}
		}
	}
	return true
}

// runE8 covers the three Theorem 8 problems: #CNFSAT, permanent, and
// Hamiltonian cycles, each against its classical 2^n-side baseline.
func runE8(quick bool) {
	fmt.Println("| problem | size | baseline (ms) | camelot per-node (ms) | proof symbols | agree |")
	fmt.Println("|---|---|---|---|---|---|")
	// #CNFSAT.
	vs := []int{12, 16}
	if quick {
		vs = []int{12}
	}
	for _, v := range vs {
		f := cnfsat.RandomFormula(v, 3*v/2, 3, int64(v))
		var want *big.Int
		bt := timed(func() { want = cnfsat.CountBrute(f) })
		p, err := cnfsat.NewProblem(f)
		if err != nil {
			panic(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: 3, DecodingNodes: 1})
		if err != nil {
			panic(err)
		}
		got, err := p.CountSolutions(proof)
		if err != nil {
			panic(err)
		}
		fmt.Printf("| #cnfsat | v=%d | %s | %s | %d | %v |\n",
			v, ms(bt), ms(rep.MaxNodeCompute), rep.ProofSymbols, got.Cmp(want) == 0)
	}
	// Permanent.
	ns := []int{10, 12}
	if quick {
		ns = []int{10}
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(int64(n)))
		a := make([][]int64, n)
		for i := range a {
			a[i] = make([]int64, n)
			for j := range a[i] {
				a[i][j] = rng.Int63n(3)
			}
		}
		var want *big.Int
		bt := timed(func() { want = permanent.Ryser(a) })
		p, err := permanent.NewProblem(a)
		if err != nil {
			panic(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: 4, DecodingNodes: 1})
		if err != nil {
			panic(err)
		}
		got, err := p.Recover(proof)
		if err != nil {
			panic(err)
		}
		fmt.Printf("| permanent | n=%d | %s | %s | %d | %v |\n",
			n, ms(bt), ms(rep.MaxNodeCompute), rep.ProofSymbols, got.Cmp(want) == 0)
	}
	// Hamiltonian cycles.
	hn := []int{9, 10}
	if quick {
		hn = []int{9}
	}
	for _, n := range hn {
		g := graph.Gnp(n, 0.6, int64(n))
		var want *big.Int
		bt := timed(func() { want = hamilton.CountDP(g) })
		p, err := hamilton.NewProblem(g)
		if err != nil {
			panic(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: 5, DecodingNodes: 1})
		if err != nil {
			panic(err)
		}
		got, err := p.RecoverUndirected(proof)
		if err != nil {
			panic(err)
		}
		fmt.Printf("| hamilton | n=%d | %s | %s | %d | %v |\n",
			n, ms(bt), ms(rep.MaxNodeCompute), rep.ProofSymbols, got.Cmp(want) == 0)
	}
}

// runE9 covers Theorems 9 and 10 on random set families.
func runE9(quick bool) {
	fmt.Println("| problem | n | family | t | IE baseline (ms) | camelot per-node (ms) | agree |")
	fmt.Println("|---|---|---|---|---|---|---|")
	ns := []int{10, 12}
	if quick {
		ns = []int{10}
	}
	rng := rand.New(rand.NewSource(21))
	for _, n := range ns {
		fam := make([]uint64, 0, 24)
		full := uint64(1)<<uint(n) - 1
		for len(fam) < 24 {
			x := rng.Uint64() & full
			if x != 0 {
				fam = append(fam, x)
			}
		}
		const t = 3
		var want *big.Int
		bt := timed(func() { want = setcover.CountCoversIE(fam, n, t) })
		p, err := setcover.NewCoverProblem(fam, n, t)
		if err != nil {
			panic(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: 6, DecodingNodes: 1})
		if err != nil {
			panic(err)
		}
		got, err := p.RecoverCovers(proof)
		if err != nil {
			panic(err)
		}
		fmt.Printf("| covers (Thm 9) | %d | %d | %d | %s | %s | %v |\n",
			n, len(fam), t, ms(bt), ms(rep.MaxNodeCompute), got.Cmp(want) == 0)
		// Exact covers with singletons added so partitions exist.
		exFam := append(append([]uint64(nil), fam...), singletons(n)...)
		var wantEx *big.Int
		bt = timed(func() { wantEx = setcover.CountExactCoversBrute(exFam, n, t) })
		pe, err := setcover.NewExactCoverProblem(exFam, n, t)
		if err != nil {
			panic(err)
		}
		proofE, repE, err := core.Run(context.Background(), pe, core.Options{Nodes: 4, Seed: 7, DecodingNodes: 1})
		if err != nil {
			panic(err)
		}
		gotEx, err := pe.RecoverTuples(proofE)
		if err != nil {
			panic(err)
		}
		fmt.Printf("| exact covers (Thm 10) | %d | %d | %d | %s | %s | %v |\n",
			n, len(exFam), t, ms(bt), ms(repE.MaxNodeCompute), gotEx.Cmp(wantEx) == 0)
	}
}

func singletons(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = 1 << uint(i)
	}
	return out
}

// runE12 demonstrates the framework guarantees: decoding succeeds with
// culprit identification up to the radius and fails loudly beyond it;
// forged proofs are rejected at the d/q rate.
func runE12(quick bool) {
	g := graph.Gnp(24, 0.3, 9)
	p, err := func() (core.Problem, error) {
		return newTriangleProblemForE12(g)
	}()
	if err != nil {
		panic(err)
	}
	d := p.Degree()
	const k = 8
	// Radius covering exactly two node blocks.
	f := 0
	for {
		e := d + 1 + 2*f
		if f >= 2*((e+k-1)/k) {
			break
		}
		f++
	}
	fmt.Println("| byzantine nodes | radius | outcome | identified |")
	fmt.Println("|---|---|---|---|")
	for _, bad := range [][]int{nil, {2}, {2, 5}, {1, 2, 5}} {
		var adv core.Adversary = core.NoAdversary{}
		if len(bad) > 0 {
			adv = core.NewLyingNodes(1, bad...)
		}
		_, rep, err := core.Run(context.Background(), p, core.Options{
			Nodes: k, FaultTolerance: f, Adversary: adv, Seed: 1, DecodingNodes: 1,
		})
		outcome := "decoded+verified"
		identified := "-"
		if err != nil {
			outcome = "decode failed (expected beyond radius)"
		} else {
			identified = fmt.Sprintf("%v", rep.SuspectNodes)
		}
		fmt.Printf("| %v | %d | %s | %s |\n", bad, f, outcome, identified)
	}
	// Soundness: empirical forged-proof acceptance rate vs d/q.
	proof, _, err := core.Run(context.Background(), p, core.Options{Seed: 2, DecodingNodes: 1})
	if err != nil {
		panic(err)
	}
	q := proof.Primes[0]
	proof.Coeffs[q][0][0] = (proof.Coeffs[q][0][0] + 1) % q
	trials := 2000
	if quick {
		trials = 400
	}
	accepted := 0
	for seed := 0; seed < trials; seed++ {
		ok, err := core.VerifyProof(p, proof, 1, int64(seed))
		if err != nil {
			panic(err)
		}
		if ok {
			accepted++
		}
	}
	fmt.Printf("\nsoundness: forged proof accepted %d/%d trials (bound d/q = %d/%d = %.4f%%)\n",
		accepted, trials, d, q, 100*float64(d)/float64(q))
}
