package main

import (
	"context"
	"math/rand"

	"camelot/internal/conv3sum"
	"camelot/internal/core"
	"camelot/internal/graph"
	"camelot/internal/tensor"
	"camelot/internal/triangles"
)

// bits draws an n×t 0/1 matrix with the given density.
func bits(n, t int, density float64, seed int64) []uint8 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint8, n*t)
	for i := range out {
		if rng.Float64() < density {
			out[i] = 1
		}
	}
	return out
}

// arrayIdentity returns [1, 2, ..., n]: every (i, ℓ) pair is a
// Convolution3SUM solution.
func arrayIdentity(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}

// conv3sumNaive wraps the package baseline.
func conv3sumNaive(a []uint64) []int64 { return conv3sum.CountNaive(a) }

// conv3sumRun executes the Camelot Convolution3SUM run.
func conv3sumRun(a []uint64, t int) (*conv3sum.Problem, *core.Report, []int64) {
	p, err := conv3sum.NewProblem(a, t)
	if err != nil {
		panic(err)
	}
	proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: 8, DecodingNodes: 1})
	if err != nil {
		panic(err)
	}
	counts, err := p.Counts(proof)
	if err != nil {
		panic(err)
	}
	return p, rep, counts
}

// newTriangleProblemForE12 builds the robustness-experiment problem.
func newTriangleProblemForE12(g *graph.Graph) (core.Problem, error) {
	return triangles.NewProblem(g, tensor.Strassen())
}
