package camelot

import (
	"context"
	"math/big"
	"testing"

	"camelot/internal/core"
	"camelot/internal/triangles"
)

func TestCountCliquesFacade(t *testing.T) {
	g := CompleteGraph(8)
	count, rep, err := CountCliques(context.Background(), g, 6, WithNodes(4), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("not verified")
	}
	if count.Cmp(big.NewInt(28)) != 0 { // C(8,6)
		t.Fatalf("K8 six-cliques = %v, want 28", count)
	}
	seq, err := CountCliquesSequential(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Cmp(count) != 0 {
		t.Fatal("sequential baseline disagrees")
	}
}

func TestCountTrianglesFacadeWithByzantineNode(t *testing.T) {
	g := RandomGraph(20, 0.3, 7)
	// Probe geometry first so the radius covers one byzantine node block.
	_, rep, err := CountTriangles(context.Background(), g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Degree
	k := 5
	f := 0
	for {
		e := d + 1 + 2*f
		if f >= (e+k-1)/k {
			break
		}
		f++
	}
	count, rep, err := CountTriangles(context.Background(), g,
		WithNodes(k), WithFaultTolerance(f), WithAdversary(LyingNodes(3, 2)), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SuspectNodes) != 1 || rep.SuspectNodes[0] != 2 {
		t.Fatalf("suspects = %v, want [2]", rep.SuspectNodes)
	}
	if count.Sign() < 0 {
		t.Fatal("negative count")
	}
}

func TestChromaticFacade(t *testing.T) {
	coeffs, _, err := ChromaticPolynomial(context.Background(), CycleGraph(5), WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	// χ_{C5}(t) = (t-1)^5 - (t-1) = t^5 -5t^4 +10t^3 -10t^2 +4t.
	want := []int64{0, 4, -10, 10, -5, 1}
	for i, w := range want {
		if coeffs[i].Cmp(big.NewInt(w)) != 0 {
			t.Fatalf("c_%d = %v, want %d", i, coeffs[i], w)
		}
	}
}

func TestTutteFacadeSpanningTrees(t *testing.T) {
	res, err := TuttePolynomial(context.Background(), FromGraph(CompleteGraph(4)), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := EvalTutte(res.T, 1, 1); got.Cmp(big.NewInt(16)) != 0 {
		t.Fatalf("K4 spanning trees = %v, want 16 (Cayley)", got)
	}
}

func TestCNFAndPermanentFacade(t *testing.T) {
	f := &CNFFormula{V: 4, Clauses: [][]int{{1, 2}, {-3, 4}}}
	count, _, err := CountCNFSolutions(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	// (3/4)(3/4)·16 = 9.
	if count.Cmp(big.NewInt(9)) != 0 {
		t.Fatalf("#SAT = %v, want 9", count)
	}
	per, _, err := Permanent(context.Background(), [][]int64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if per.Cmp(big.NewInt(10)) != 0 {
		t.Fatalf("permanent = %v, want 10", per)
	}
}

func TestHamiltonAndSetCoverFacade(t *testing.T) {
	count, _, err := CountHamiltonianCycles(context.Background(), CompleteGraph(5))
	if err != nil {
		t.Fatal(err)
	}
	if count.Cmp(big.NewInt(12)) != 0 {
		t.Fatalf("K5 hamilton cycles = %v, want 12", count)
	}
	// Universe {0,1}, family {{0},{1}}: one partition into 2 parts; covers
	// with t=2: the 2 orderings.
	covers, _, err := CountSetCovers(context.Background(), []uint64{0b01, 0b10}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if covers.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("covers = %v, want 2", covers)
	}
	parts, _, err := CountSetPartitions(context.Background(), []uint64{0b01, 0b10}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if parts.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("partitions = %v, want 1", parts)
	}
}

func TestVectorProblemFacades(t *testing.T) {
	ctx := context.Background()
	a := RandomBoolMatrix(6, 4, 0.4, 1)
	b := RandomBoolMatrix(6, 4, 0.4, 2)
	counts, _, err := CountOrthogonalPairs(ctx, 6, 4, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 6 {
		t.Fatalf("counts = %v", counts)
	}
	dist, _, err := HammingDistribution(ctx, 6, 4, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range dist {
		sum := int64(0)
		for _, c := range row {
			sum += c
		}
		if sum != 6 {
			t.Fatalf("row %d distribution sums to %d", i, sum)
		}
	}
	sols, _, err := Convolution3SUM(ctx, []uint64{1, 2, 3, 4, 5, 6}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range sols {
		if c != 3 {
			t.Fatalf("c_%d = %d, want 3 (identity array)", i+1, c)
		}
	}
}

func TestMerlinArthurMode(t *testing.T) {
	// Prepare a proof once (Merlin), verify it repeatedly (Arthur), then
	// forge a coefficient and watch verification fail.
	g := RandomGraph(16, 0.4, 9)
	p, proof := prepareTriangleProof(t, g)
	ok, err := VerifyProof(p, proof, 3, 42)
	if err != nil || !ok {
		t.Fatalf("honest proof rejected: %v", err)
	}
	q := proof.Primes[0]
	proof.Coeffs[q][0][1] = (proof.Coeffs[q][0][1] + 1) % q
	rejected := false
	for seed := int64(0); seed < 20 && !rejected; seed++ {
		ok, err := VerifyProof(p, proof, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		rejected = !ok
	}
	if !rejected {
		t.Fatal("forged proof survived 20 trials")
	}
}

func prepareTriangleProof(t *testing.T, g *Graph) (Problem, *Proof) {
	t.Helper()
	c := newConfig([]Option{WithSeed(4)})
	p, err := triangles.NewProblem(g.g, c.run.base)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, c.coreOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p, proof
}

func TestOptionValidationErrors(t *testing.T) {
	ctx := context.Background()
	if _, _, err := CountCliques(ctx, CompleteGraph(6), 5); err == nil {
		t.Fatal("k=5 must error")
	}
	if _, _, err := Permanent(ctx, [][]int64{{1}}); err == nil {
		t.Fatal("1x1 permanent must error")
	}
	if _, _, err := CountCNFSolutions(ctx, &CNFFormula{V: 1}); err == nil {
		t.Fatal("bad formula must error")
	}
}
