// Package camelot is a verifiable, byzantine-fault-tolerant distributed
// batch-evaluation framework: a faithful implementation of "How Proofs
// are Prepared at Camelot" (Björklund & Kaski, PODC 2016).
//
// A Camelot computation tasks K nodes with evaluating a problem-specific
// proof polynomial P(x) mod q at e points. The evaluations form a
// Reed–Solomon codeword, so every node can independently error-correct
// the community's shares (identifying the failed nodes as a byproduct)
// and any party can verify the decoded proof against the input with a
// single random evaluation — soundness error at most deg(P)/q per trial.
//
// The package exposes one-call counting functions for every problem the
// paper treats — k-cliques, triangles, the chromatic and Tutte
// polynomials, #CNFSAT, permanents, Hamiltonian cycles, set covers and
// partitions, orthogonal vectors, Hamming distance distributions,
// Convolution3SUM, and 2-CSP enumeration — plus the raw framework
// (RunProblem / VerifyProof) for custom proof polynomials.
//
// The paper's model is a service: K nodes standing by to prepare
// encoded proofs for a stream of inputs. The session API makes that
// explicit — NewCluster creates a long-lived runtime owning a shared
// bounded worker pool and warm per-prime state, Submit enqueues a run
// and returns an async Job handle (Wait, Done, Status with per-stage
// progress), and Close drains in-flight work. The one-shot functions
// are thin wrappers over a lazily initialized default cluster, so both
// styles produce bit-identical proofs.
package camelot

import (
	"math/rand"
	"time"

	"camelot/internal/core"
	"camelot/internal/graph"
	"camelot/internal/rs"
	"camelot/internal/tensor"
)

// ErrDecodeFailure is the typed failure of a run whose combined faults
// exceed the Reed–Solomon budget — too many corrupted shares, too many
// lost broadcasts, or both (2·errors + erasures > e-d-1). Match with
// errors.Is; the budget arithmetic lives in the run's FaultTolerance
// and MaxErasures options.
var ErrDecodeFailure = rs.ErrDecodeFailure

// ErrQuorumUnsupported is returned when a run tolerating delivery
// faults (WithMaxErasures) is configured with a custom transport that
// cannot gather by quorum. The built-in transports all can.
var ErrQuorumUnsupported = core.ErrQuorumUnsupported

// Report summarizes a run: sizing (proof symbols, code length, primes),
// timing (per-node and total compute), adversary damage (suspect nodes,
// corrupted shares), and the verification outcome.
type Report = core.Report

// Proof is the static, independently verifiable artifact of a run.
type Proof = core.Proof

// Problem is the plug-in interface for custom Camelot proof systems; see
// the core package documentation for the contract.
type Problem = core.Problem

// Adversary injects byzantine behaviour into a run's share traffic.
type Adversary = core.Adversary

// BatchProblem is the optional block-evaluation extension of Problem:
// problems implementing it receive their owned point range per prime
// in blocks of consecutive points per EvaluateBlock call, amortizing
// per-prime setup across each block. Block size is autotuned from a
// first-chunk timing probe by default; WithBlockSize pins it.
type BatchProblem = core.BatchProblem

// Transport carries node share broadcasts; the default is the in-memory
// broadcast bus.
type Transport = core.Transport

// TransportFactory builds a fresh Transport for a run of k nodes.
type TransportFactory = core.TransportFactory

// NodeShares is the message a node broadcasts over the Transport.
type NodeShares = core.NodeShares

// LossyConfig parameterizes the simulated network faults of a lossy
// transport: seeded drop/delay/duplicate decisions plus a deterministic
// list of senders whose broadcasts are always lost.
type LossyConfig = core.LossyConfig

// TCPConfig parameterizes a TCP share transport: the collector's
// listen address, the address senders dial, and the dial-retry and
// frame-size knobs (see WithTCPTransport for the option form).
type TCPConfig = core.TCPConfig

// ErrBadFrame is the typed rejection of a malformed NodeShares frame
// arriving over a networked transport. Match with errors.Is.
var ErrBadFrame = core.ErrBadFrame

// ErrMalformedProof is the typed rejection of proof bytes that cannot
// be a Camelot proof — wrong magic, duplicated or implausible
// geometry, or size claims the data cannot back. Match with errors.Is.
var ErrMalformedProof = core.ErrMalformedProof

// NewBroadcastBus returns the default in-memory transport for k nodes.
func NewBroadcastBus(k int) *core.BroadcastBus { return core.NewBroadcastBus(k) }

// NewShardedTransport returns a transport that partitions k nodes into
// per-shard buses bridged by cross-shard relay goroutines.
func NewShardedTransport(k, shards int) *core.ShardedTransport {
	return core.NewShardedTransport(k, shards)
}

// NewLossyTransport wraps an inner transport with the seeded fault
// model of cfg (see WithLossyTransport for the factory form).
func NewLossyTransport(inner Transport, cfg LossyConfig) *core.LossyTransport {
	return core.NewLossyTransport(inner, cfg)
}

// NewTCPTransport returns a transport carrying NodeShares frames over
// TCP for a run of k nodes (see WithTCPTransport for the option form
// and TCPConfig for the knobs). With a ListenAddr it binds immediately
// and acts as the run's collector; construction fails if the bind does.
func NewTCPTransport(k int, cfg TCPConfig) (*core.TCPTransport, error) {
	return core.NewTCPTransport(k, cfg)
}

// SilentNodes returns a crash-fault adversary: the listed nodes send
// nothing.
func SilentNodes(ids ...int) Adversary { return core.NewSilentNodes(ids...) }

// LyingNodes returns a byzantine adversary whose listed nodes broadcast
// deterministic garbage (the same garbage to every recipient).
func LyingNodes(salt uint64, ids ...int) Adversary { return core.NewLyingNodes(salt, ids...) }

// EquivocatingNodes returns a byzantine adversary whose listed nodes send
// different garbage to different recipients.
func EquivocatingNodes(salt uint64, ids ...int) Adversary {
	return core.NewEquivocatingNodes(salt, ids...)
}

// --- Options ------------------------------------------------------------------

// The option vocabulary is split by scope, mirroring the session API:
//
//   - ClusterOption configures the long-lived runtime — how wide the
//     shared worker pool is, how many logical nodes serve a run, how
//     shares travel. Accepted by NewCluster.
//   - RunOption configures one run — its fault tolerance, adversary,
//     randomness, verification effort, tensor decomposition. Accepted
//     by Cluster.Submit and the problem constructors.
//   - Option is either of the two: every With* constructor returns a
//     value usable with the classic one-shot facade functions, which
//     route through a lazily initialized default cluster.

// Option configures a one-shot facade call (CountTriangles,
// TuttePolynomial, RunProblem, ...). Every ClusterOption and RunOption
// is also an Option.
type Option interface {
	applyFacade(*config)
}

// ClusterOption is a cluster-scoped Option: it configures the
// long-lived runtime a NewCluster call creates.
type ClusterOption interface {
	Option
	applyCluster(*clusterConfig)
}

// RunOption is a run-scoped Option: it configures a single submitted
// run (or a problem constructed for one).
type RunOption interface {
	Option
	applyRun(*runSettings)
}

// clusterConfig holds the cluster-scoped knobs.
type clusterConfig struct {
	nodes          int
	maxParallelism int
	newTransport   TransportFactory
	// tcpDial/tcpListen accumulate across WithTCPTransport and
	// WithListenAddr so the two options compose in either order; each
	// application re-snapshots both into the factory.
	tcpDial, tcpListen string
}

// runSettings holds the run-scoped knobs: the run-scoped subset of
// core.Options plus the tensor decomposition used by problem
// constructors.
type runSettings struct {
	opts core.Options // only run-scoped fields are set here
	base tensor.Decomposition
	// planKey names the run's workload for the cluster's shared
	// compiled-plan cache; empty keeps the run's plans private. Set via
	// the unexported withPlanKey (the serve layer derives it from
	// Workload.PlanDigest), not by callers directly.
	planKey string
}

func defaultRunSettings() runSettings {
	return runSettings{base: tensor.Strassen()}
}

// config is the merged view a one-shot facade call resolves.
type config struct {
	cluster clusterConfig
	run     runSettings
}

func newConfig(opts []Option) config {
	c := config{run: defaultRunSettings()}
	for _, o := range opts {
		o.applyFacade(&c)
	}
	return c
}

// coreOptions merges both scopes into the engine's option struct.
func (c *config) coreOptions() core.Options {
	o := c.run.opts
	o.Nodes = c.cluster.nodes
	o.MaxParallelism = c.cluster.maxParallelism
	o.NewTransport = c.cluster.newTransport
	o.PlanKey = c.run.planKey
	return o
}

// clusterOption is the concrete ClusterOption implementation.
type clusterOption func(*clusterConfig)

func (o clusterOption) applyFacade(c *config)          { o(&c.cluster) }
func (o clusterOption) applyCluster(cc *clusterConfig) { o(cc) }

// runOption is the concrete RunOption implementation.
type runOption func(*runSettings)

func (o runOption) applyFacade(c *config)    { o(&c.run) }
func (o runOption) applyRun(rs *runSettings) { o(rs) }

// WithNodes sets the number of compute nodes K (default 1). Cluster
// scope: K is the work split every run on the cluster uses.
func WithNodes(k int) ClusterOption {
	return clusterOption(func(cc *clusterConfig) { cc.nodes = k })
}

// WithMaxParallelism bounds the worker pool that drives node evaluation
// and decoding (0 = GOMAXPROCS). The logical node count K sets the work
// split, not the goroutine count. Cluster scope: the pool is the
// cluster's shared execution width, fixed at construction.
func WithMaxParallelism(n int) ClusterOption {
	return clusterOption(func(cc *clusterConfig) { cc.maxParallelism = n })
}

// WithTransport substitutes the share-broadcast transport (default: the
// in-memory broadcast bus). The factory is invoked once per run with
// the node count, so transports can size their buffers.
func WithTransport(tf TransportFactory) ClusterOption {
	return clusterOption(func(cc *clusterConfig) { cc.newTransport = tf })
}

// WithShardedTransport partitions the cluster's nodes into the given
// number of per-shard buses bridged by cross-shard relay goroutines —
// the paper's broadcast bus split across machine groups. Replaces any
// previously configured transport.
func WithShardedTransport(shards int) ClusterOption {
	return clusterOption(func(cc *clusterConfig) {
		cc.newTransport = func(k int) Transport { return core.NewShardedTransport(k, shards) }
	})
}

// WithTCPTransport carries share broadcasts over TCP instead of an
// in-memory bus: addr is the address every node's Send dials, and —
// unless WithListenAddr overrides it — also where the run's collector
// listens. The wire format is the versioned length-prefixed NodeShares
// frame (see ARCHITECTURE.md "Networked transport"); delivery faults a
// real socket can inflict (lost, truncated, or corrupted frames) are
// absorbed by the same WithMaxErasures/WithGatherGrace budget as any
// other transport, and WithLossyTransport layers on top for loopback
// chaos. Each run binds its own listener, so concurrent runs on one
// cluster need an ephemeral port (":0", senders dial the bound
// address) or per-run addresses; back-to-back runs can share a fixed
// port. Replaces any previously configured transport.
func WithTCPTransport(addr string) ClusterOption {
	return clusterOption(func(cc *clusterConfig) {
		cc.tcpDial = addr
		cc.newTransport = tcpFactory(cc.tcpDial, cc.tcpListen)
	})
}

// WithListenAddr sets (or, together with WithTCPTransport, overrides)
// the TCP collector's bind address. Alone it makes a loopback TCP
// cluster whose senders dial whatever the listener bound — the
// idiomatic form for ephemeral ports: WithListenAddr("127.0.0.1:0").
// With WithTCPTransport it separates bind from dial, e.g. listening on
// "0.0.0.0:9000" while senders dial a public name. Like every base
// transport option it replaces any previously configured transport —
// place WithLossyTransport after the TCP options so the faults ride
// the socket path.
func WithListenAddr(addr string) ClusterOption {
	return clusterOption(func(cc *clusterConfig) {
		cc.tcpListen = addr
		cc.newTransport = tcpFactory(cc.tcpDial, cc.tcpListen)
	})
}

// tcpFactory resolves the two TCP option fields into a transport
// factory: an empty listen address falls back to binding the dial
// address; an empty dial address means "dial the bound listener".
func tcpFactory(dial, listen string) TransportFactory {
	if listen == "" {
		listen = dial
	}
	return core.NewTCPFactory(core.TCPConfig{Addr: dial, ListenAddr: listen})
}

// WithLossyTransport simulates a faulty network: seeded, per-sender
// decisions to drop, delay, or duplicate share broadcasts, layered over
// whatever transport the preceding options configured (the broadcast
// bus by default, so order matters: place this after
// WithShardedTransport or WithTCPTransport/WithListenAddr to lose
// messages on a sharded or networked run). Runs on
// a lossy cluster that may actually drop messages also need the
// run-scoped WithMaxErasures to opt into erasure-tolerant gathering.
func WithLossyTransport(cfg LossyConfig) ClusterOption {
	return clusterOption(func(cc *clusterConfig) {
		cc.newTransport = core.NewLossyFactory(cfg, cc.newTransport)
	})
}

// WithBlockSize fixes how many consecutive points one EvaluateBlock
// call receives for BatchProblem implementations. The default (0)
// autotunes: each evaluation task times a small probe chunk and sizes
// subsequent blocks for roughly 25ms each, so cheap points get large
// amortizing blocks and expensive points keep cancellation responsive.
// Pin an explicit size when the problem's per-block setup has a known
// sweet spot (or when benchmarking block-size sensitivity itself).
func WithBlockSize(points int) RunOption {
	return runOption(func(rs *runSettings) { rs.opts.BlockSize = points })
}

// withPlanKey names the run's workload for the cluster's shared
// compiled-plan cache: runs submitted with the same key to one cluster
// reuse each other's compiled per-prime evaluation plans. The key must
// be derived from the instance's canonical encoding (Workload.
// PlanDigest) — a display name is not unique enough. Unexported: the
// serve layer is the only caller with a canonical digest in hand.
func withPlanKey(key string) RunOption {
	return runOption(func(rs *runSettings) { rs.planKey = key })
}

// WithFaultTolerance sets the number f of corrupted shares the run
// survives; the codeword is lengthened to e = d+1+2f.
func WithFaultTolerance(f int) RunOption {
	return runOption(func(rs *runSettings) { rs.opts.FaultTolerance = f })
}

// WithAdversary injects byzantine behaviour (for experiments and tests).
func WithAdversary(a Adversary) RunOption {
	return runOption(func(rs *runSettings) { rs.opts.Adversary = a })
}

// WithSeed seeds the verification randomness.
func WithSeed(seed int64) RunOption {
	return runOption(func(rs *runSettings) { rs.opts.Seed = seed })
}

// WithVerifyTrials sets the number of independent spot checks (each with
// soundness error <= d/q; default 1).
func WithVerifyTrials(trials int) RunOption {
	return runOption(func(rs *runSettings) { rs.opts.VerifyTrials = trials })
}

// WithDecodingNodes caps how many honest nodes run the full decoder
// (0 = all, the paper's model).
func WithDecodingNodes(k int) RunOption {
	return runOption(func(rs *runSettings) { rs.opts.DecodingNodes = k })
}

// WithMaxErasures lets the run tolerate losing up to n node broadcasts
// in delivery: the gather returns once K-n distinct senders have been
// heard (or the grace timer fires) and the missing nodes' coordinates
// are decoded as Reed–Solomon erasures — each costing half an error in
// the budget 2·errors + erasures ≤ e-d-1. Default 0: a strict run that
// fails if any message is lost.
func WithMaxErasures(n int) RunOption {
	return runOption(func(rs *runSettings) { rs.opts.MaxErasures = n })
}

// WithGatherGrace bounds how long an erasure-tolerant gather waits
// between hearing from *new* senders before giving up on stragglers
// (default 2s; only meaningful with WithMaxErasures). Duplicate
// deliveries do not renew the grace — only a sender not heard before
// does, as does the moment all sending concludes.
func WithGatherGrace(d time.Duration) RunOption {
	return runOption(func(rs *runSettings) { rs.opts.GatherGrace = d })
}

// WithMaxRepairRounds lets the run recover from delivery losses beyond
// the Reed–Solomon budget: when the decode stage fails with
// ErrDecodeFailure, up to n repair rounds re-assign the missing nodes'
// point ranges to surviving nodes, re-gather over the same transport,
// and retry the decode — turning a terminal failure into latency.
// Repaired proofs are bit-identical to fault-free ones (evaluation is
// deterministic in the point). Default 0: repair off. Requires
// WithMaxErasures — a strict gather has no missing nodes to repair.
func WithMaxRepairRounds(n int) RunOption {
	return runOption(func(rs *runSettings) { rs.opts.MaxRepairRounds = n })
}

// WithPriority sets the run's scheduling weight on the cluster's shared
// pool: each cycle of the pool's between-runs round-robin lets this run
// claim weight tasks where a default run claims one. Values below 1
// (including the default 0) mean weight 1. Weights shape shares, not
// admission — every run with work left still claims at least one task
// per cycle, so a low-priority run is never starved. This is the knob a
// multi-tenant proof service uses to give some tenants a larger slice
// of a contended cluster.
func WithPriority(weight int) RunOption {
	return runOption(func(rs *runSettings) { rs.opts.Priority = weight })
}

// WithStrassenTensor selects the rank-7 ⟨2,2,2⟩ decomposition
// (ω = log2 7) for the matrix-multiplication-based designs. The default.
func WithStrassenTensor() RunOption {
	return runOption(func(rs *runSettings) { rs.base = tensor.Strassen() })
}

// WithTrivialTensor selects the rank-b³ classical decomposition (ω = 3)
// with base size b for the matrix-multiplication-based designs.
func WithTrivialTensor(b int) RunOption {
	return runOption(func(rs *runSettings) { rs.base = tensor.Trivial(b) })
}

// --- Public input types -------------------------------------------------------

// Graph is a simple undirected graph on vertices 0..n-1.
type Graph struct {
	g *graph.Graph
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return &Graph{g: graph.New(n)} }

// AddEdge inserts the undirected edge {u, v}; loops and duplicates are
// ignored.
func (g *Graph) AddEdge(u, v int) { g.g.AddEdge(u, v) }

// N returns the vertex count.
func (g *Graph) N() int { return g.g.N() }

// M returns the edge count.
func (g *Graph) M() int { return g.g.M() }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.g.HasEdge(u, v) }

// RandomGraph returns an Erdős–Rényi G(n, p) graph.
func RandomGraph(n int, p float64, seed int64) *Graph {
	return &Graph{g: graph.Gnp(n, p, seed)}
}

// CompleteGraph returns K_n.
func CompleteGraph(n int) *Graph { return &Graph{g: graph.Complete(n)} }

// CycleGraph returns C_n.
func CycleGraph(n int) *Graph { return &Graph{g: graph.Cycle(n)} }

// PetersenGraph returns the Petersen graph.
func PetersenGraph() *Graph { return &Graph{g: graph.Petersen()} }

// PlantCliques returns a sparse random graph with cnt planted k-cliques.
func PlantCliques(n int, p float64, k, cnt int, seed int64) *Graph {
	return &Graph{g: graph.PlantCliques(n, p, k, cnt, seed)}
}

// Multigraph is an undirected multigraph (loops and parallel edges
// allowed), the Tutte polynomial's natural domain.
type Multigraph struct {
	mg *graph.Multigraph
}

// NewMultigraph returns an edgeless multigraph on n vertices.
func NewMultigraph(n int) *Multigraph { return &Multigraph{mg: graph.NewMultigraph(n)} }

// AddEdge appends an edge; u == v inserts a loop.
func (m *Multigraph) AddEdge(u, v int) { m.mg.AddEdge(u, v) }

// N returns the vertex count.
func (m *Multigraph) N() int { return m.mg.N() }

// M returns the edge count with multiplicity.
func (m *Multigraph) M() int { return m.mg.M() }

// FromGraph converts a simple graph.
func FromGraph(g *Graph) *Multigraph { return &Multigraph{mg: graph.FromGraph(g.g)} }

// RandomMultigraph draws m edges uniformly with replacement.
func RandomMultigraph(n, m int, seed int64) *Multigraph {
	return &Multigraph{mg: graph.RandomMultigraph(n, m, seed)}
}

// randomBits fills a Boolean matrix deterministically; shared by the
// vector-problem constructors.
func randomBits(n, t int, density float64, seed int64) []uint8 {
	rng := rand.New(rand.NewSource(seed))
	bits := make([]uint8, n*t)
	for i := range bits {
		if rng.Float64() < density {
			bits[i] = 1
		}
	}
	return bits
}
