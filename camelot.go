// Package camelot is a verifiable, byzantine-fault-tolerant distributed
// batch-evaluation framework: a faithful implementation of "How Proofs
// are Prepared at Camelot" (Björklund & Kaski, PODC 2016).
//
// A Camelot computation tasks K nodes with evaluating a problem-specific
// proof polynomial P(x) mod q at e points. The evaluations form a
// Reed–Solomon codeword, so every node can independently error-correct
// the community's shares (identifying the failed nodes as a byproduct)
// and any party can verify the decoded proof against the input with a
// single random evaluation — soundness error at most deg(P)/q per trial.
//
// The package exposes one-call counting functions for every problem the
// paper treats — k-cliques, triangles, the chromatic and Tutte
// polynomials, #CNFSAT, permanents, Hamiltonian cycles, set covers and
// partitions, orthogonal vectors, Hamming distance distributions,
// Convolution3SUM, and 2-CSP enumeration — plus the raw framework
// (RunProblem / VerifyProof) for custom proof polynomials.
package camelot

import (
	"math/rand"

	"camelot/internal/core"
	"camelot/internal/graph"
	"camelot/internal/tensor"
)

// Report summarizes a run: sizing (proof symbols, code length, primes),
// timing (per-node and total compute), adversary damage (suspect nodes,
// corrupted shares), and the verification outcome.
type Report = core.Report

// Proof is the static, independently verifiable artifact of a run.
type Proof = core.Proof

// Problem is the plug-in interface for custom Camelot proof systems; see
// the core package documentation for the contract.
type Problem = core.Problem

// Adversary injects byzantine behaviour into a run's share traffic.
type Adversary = core.Adversary

// BatchProblem is the optional block-evaluation extension of Problem:
// problems implementing it receive their owned point range per prime
// in blocks of up to 256 consecutive points per EvaluateBlock call,
// amortizing per-prime setup across each block.
type BatchProblem = core.BatchProblem

// Transport carries node share broadcasts; the default is the in-memory
// broadcast bus.
type Transport = core.Transport

// TransportFactory builds a fresh Transport for a run of k nodes.
type TransportFactory = core.TransportFactory

// NodeShares is the message a node broadcasts over the Transport.
type NodeShares = core.NodeShares

// NewBroadcastBus returns the default in-memory transport for k nodes.
func NewBroadcastBus(k int) *core.BroadcastBus { return core.NewBroadcastBus(k) }

// SilentNodes returns a crash-fault adversary: the listed nodes send
// nothing.
func SilentNodes(ids ...int) Adversary { return core.NewSilentNodes(ids...) }

// LyingNodes returns a byzantine adversary whose listed nodes broadcast
// deterministic garbage (the same garbage to every recipient).
func LyingNodes(salt uint64, ids ...int) Adversary { return core.NewLyingNodes(salt, ids...) }

// EquivocatingNodes returns a byzantine adversary whose listed nodes send
// different garbage to different recipients.
func EquivocatingNodes(salt uint64, ids ...int) Adversary {
	return core.NewEquivocatingNodes(salt, ids...)
}

// config collects run options.
type config struct {
	opts core.Options
	base tensor.Decomposition
}

func newConfig(opts []Option) config {
	c := config{base: tensor.Strassen()}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Option configures a Camelot run.
type Option func(*config)

// WithNodes sets the number of compute nodes K (default 1).
func WithNodes(k int) Option { return func(c *config) { c.opts.Nodes = k } }

// WithFaultTolerance sets the number f of corrupted shares the run
// survives; the codeword is lengthened to e = d+1+2f.
func WithFaultTolerance(f int) Option { return func(c *config) { c.opts.FaultTolerance = f } }

// WithAdversary injects byzantine behaviour (for experiments and tests).
func WithAdversary(a Adversary) Option { return func(c *config) { c.opts.Adversary = a } }

// WithSeed seeds the verification randomness.
func WithSeed(seed int64) Option { return func(c *config) { c.opts.Seed = seed } }

// WithVerifyTrials sets the number of independent spot checks (each with
// soundness error <= d/q; default 1).
func WithVerifyTrials(trials int) Option { return func(c *config) { c.opts.VerifyTrials = trials } }

// WithDecodingNodes caps how many honest nodes run the full decoder
// (0 = all, the paper's model).
func WithDecodingNodes(k int) Option { return func(c *config) { c.opts.DecodingNodes = k } }

// WithMaxParallelism bounds the worker pool that drives node evaluation
// and decoding (0 = GOMAXPROCS). The logical node count K sets the work
// split, not the goroutine count.
func WithMaxParallelism(n int) Option { return func(c *config) { c.opts.MaxParallelism = n } }

// WithTransport substitutes the share-broadcast transport (default: the
// in-memory broadcast bus). The factory is invoked once per run with
// the node count, so transports can size their buffers.
func WithTransport(tf TransportFactory) Option { return func(c *config) { c.opts.NewTransport = tf } }

// WithStrassenTensor selects the rank-7 ⟨2,2,2⟩ decomposition
// (ω = log2 7) for the matrix-multiplication-based designs. The default.
func WithStrassenTensor() Option { return func(c *config) { c.base = tensor.Strassen() } }

// WithTrivialTensor selects the rank-b³ classical decomposition (ω = 3)
// with base size b for the matrix-multiplication-based designs.
func WithTrivialTensor(b int) Option { return func(c *config) { c.base = tensor.Trivial(b) } }

// --- Public input types -------------------------------------------------------

// Graph is a simple undirected graph on vertices 0..n-1.
type Graph struct {
	g *graph.Graph
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return &Graph{g: graph.New(n)} }

// AddEdge inserts the undirected edge {u, v}; loops and duplicates are
// ignored.
func (g *Graph) AddEdge(u, v int) { g.g.AddEdge(u, v) }

// N returns the vertex count.
func (g *Graph) N() int { return g.g.N() }

// M returns the edge count.
func (g *Graph) M() int { return g.g.M() }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.g.HasEdge(u, v) }

// RandomGraph returns an Erdős–Rényi G(n, p) graph.
func RandomGraph(n int, p float64, seed int64) *Graph {
	return &Graph{g: graph.Gnp(n, p, seed)}
}

// CompleteGraph returns K_n.
func CompleteGraph(n int) *Graph { return &Graph{g: graph.Complete(n)} }

// CycleGraph returns C_n.
func CycleGraph(n int) *Graph { return &Graph{g: graph.Cycle(n)} }

// PetersenGraph returns the Petersen graph.
func PetersenGraph() *Graph { return &Graph{g: graph.Petersen()} }

// PlantCliques returns a sparse random graph with cnt planted k-cliques.
func PlantCliques(n int, p float64, k, cnt int, seed int64) *Graph {
	return &Graph{g: graph.PlantCliques(n, p, k, cnt, seed)}
}

// Multigraph is an undirected multigraph (loops and parallel edges
// allowed), the Tutte polynomial's natural domain.
type Multigraph struct {
	mg *graph.Multigraph
}

// NewMultigraph returns an edgeless multigraph on n vertices.
func NewMultigraph(n int) *Multigraph { return &Multigraph{mg: graph.NewMultigraph(n)} }

// AddEdge appends an edge; u == v inserts a loop.
func (m *Multigraph) AddEdge(u, v int) { m.mg.AddEdge(u, v) }

// N returns the vertex count.
func (m *Multigraph) N() int { return m.mg.N() }

// M returns the edge count with multiplicity.
func (m *Multigraph) M() int { return m.mg.M() }

// FromGraph converts a simple graph.
func FromGraph(g *Graph) *Multigraph { return &Multigraph{mg: graph.FromGraph(g.g)} }

// RandomMultigraph draws m edges uniformly with replacement.
func RandomMultigraph(n, m int, seed int64) *Multigraph {
	return &Multigraph{mg: graph.RandomMultigraph(n, m, seed)}
}

// randomBits fills a Boolean matrix deterministically; shared by the
// vector-problem constructors.
func randomBits(n, t int, density float64, seed int64) []uint8 {
	rng := rand.New(rand.NewSource(seed))
	bits := make([]uint8, n*t)
	for i := range bits {
		if rng.Float64() < density {
			bits[i] = 1
		}
	}
	return bits
}
