package camelot

import "testing"

// Equivalent spec strings — defaults omitted vs. spelled out, fields in
// any order — must canonicalize to one line and one digest: the cache
// key the CLI, jobs manifests, and serve layer share.
func TestWorkloadCanonicalNormalizes(t *testing.T) {
	specs := []string{
		"triangles",
		"triangles n=32",
		"triangles p=0.3 n=32 seed=1",
		"triangles seed=1 n=32 p=0.3",
	}
	const want = "triangles seed=1 n=32 p=0.3"
	var digest string
	for _, spec := range specs {
		w, err := ParseWorkload(spec)
		if err != nil {
			t.Fatalf("ParseWorkload(%q): %v", spec, err)
		}
		if w.Canonical != want {
			t.Fatalf("ParseWorkload(%q).Canonical = %q, want %q", spec, w.Canonical, want)
		}
		if d := w.Digest(1); digest == "" {
			digest = d
		} else if d != digest {
			t.Fatalf("ParseWorkload(%q).Digest(1) = %s, want %s", spec, d, digest)
		}
	}
}

func TestWorkloadDigestSeparatesInstances(t *testing.T) {
	base, err := ParseWorkload("triangles n=32 p=0.3 seed=1")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{base.Digest(0): "triangles n=32 p=0.3 seed=1 f=0"}
	record := func(label, d string) {
		if prev, dup := seen[d]; dup {
			t.Fatalf("digest collision: %s and %s both map to %s", label, prev, d)
		}
		seen[d] = label
	}
	// Geometry knob f changes the codeword length and therefore the
	// proof bytes; it must change the key.
	record("same spec f=1", base.Digest(1))
	for _, spec := range []string{
		"triangles n=32 p=0.3 seed=2",
		"triangles n=16 p=0.3 seed=1",
		"cliques n=8 k=6 p=0.7 seed=1",
		"permanent n=10 seed=1",
	} {
		w, err := ParseWorkload(spec)
		if err != nil {
			t.Fatalf("ParseWorkload(%q): %v", spec, err)
		}
		record(spec+" f=0", w.Digest(0))
	}
	// Negative fault tolerance is clamped like the run options clamp it.
	if base.Digest(-3) != base.Digest(0) {
		t.Fatal("Digest(-3) != Digest(0): negative faults should clamp to 0")
	}
}
