module camelot

go 1.24
